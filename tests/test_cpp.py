"""Unit tests for the mini C preprocessor."""

import pytest

from repro.cpp import (Macro, PreprocessError, Preprocessor, preprocess,
                       splice_lines, strip_comments, tokenize)


class TestComments:
    def test_line_comment(self):
        assert strip_comments("int x; // hi\nint y;") == \
            "int x; \nint y;"

    def test_block_comment(self):
        assert strip_comments("int /* no */ x;") == "int  x;"

    def test_block_comment_preserves_newlines(self):
        out = strip_comments("a /* x\ny\nz */ b")
        assert out.count("\n") == 2

    def test_comment_in_string_untouched(self):
        assert strip_comments('char *s = "a // b";') == \
            'char *s = "a // b";'

    def test_block_marker_in_string(self):
        assert strip_comments('char *s = "/*";') == 'char *s = "/*";'

    def test_unterminated_block_comment(self):
        with pytest.raises(PreprocessError):
            strip_comments("int x; /* oops")

    def test_escaped_quote_in_string(self):
        src = r'char *s = "a \" // b";'
        assert strip_comments(src) == src


class TestSplice:
    def test_backslash_newline(self):
        assert splice_lines("a\\\nb") == "ab"

    def test_crlf(self):
        assert splice_lines("a\\\r\nb") == "ab"


class TestTokenize:
    def test_identifiers_and_ints(self):
        toks = [t for t in tokenize("foo bar42 7 0x1F") if
                not t.isspace()]
        assert toks == ["foo", "bar42", "7", "0x1F"]

    def test_strings_stay_single_tokens(self):
        toks = tokenize('f("a,b", x)')
        assert '"a,b"' in toks

    def test_operators(self):
        toks = [t for t in tokenize("a<<=b&&c...") if not t.isspace()]
        assert toks == ["a", "<<=", "b", "&&", "c", "..."]


class TestMacros:
    def test_object_macro(self):
        out = preprocess("#define N 10\nint a[N];\n")
        assert "int a[10];" in out

    def test_function_macro(self):
        out = preprocess("#define SQ(x) ((x)*(x))\nint y = SQ(3+1);\n")
        assert "((3+1)*(3+1))" in out

    def test_nested_macro(self):
        out = preprocess(
            "#define A 1\n#define B (A+1)\nint x = B;\n")
        assert "(1+1)" in out

    def test_self_reference_no_loop(self):
        out = preprocess("#define X X\nint X;\n")
        assert "int X;" in out

    def test_undef(self):
        out = preprocess("#define N 1\n#undef N\nint x = N;\n")
        assert "int x = N;" in out

    def test_function_macro_without_parens_not_expanded(self):
        out = preprocess("#define F(x) x\nint F;\n")
        assert "int F;" in out

    def test_two_args(self):
        out = preprocess("#define MAX(a,b) ((a)>(b)?(a):(b))\n"
                         "int m = MAX(1, 2);\n")
        assert "((1)>(2)?(1):(2))" in out

    def test_arg_with_nested_parens(self):
        out = preprocess("#define ID(x) x\nint y = ID(f(1,2));\n")
        assert "f(1,2)" in out

    def test_wrong_arity_is_error(self):
        with pytest.raises(PreprocessError):
            preprocess("#define F(a,b) a\nint x = F(1);\n")

    def test_variadic_macro(self):
        out = preprocess(
            "#define LOG(fmt, ...) printf(fmt, __VA_ARGS__)\n"
            'LOG("%d %d", 1, 2);\n')
        assert 'printf("%d %d", 1, 2);' in out

    def test_ccured_predefined(self):
        out = preprocess("#ifdef __CCURED__\nint cured;\n#endif\n")
        assert "int cured;" in out

    def test_external_defines(self):
        out = preprocess("int x = FOO;\n", defines={"FOO": "42"})
        assert "int x = 42;" in out


class TestConditionals:
    def test_ifdef_taken(self):
        out = preprocess("#define A\n#ifdef A\nint x;\n#endif\n")
        assert "int x;" in out

    def test_ifdef_not_taken(self):
        out = preprocess("#ifdef A\nint x;\n#endif\n")
        assert "int x;" not in out

    def test_ifndef(self):
        out = preprocess("#ifndef A\nint x;\n#endif\n")
        assert "int x;" in out

    def test_else(self):
        out = preprocess("#ifdef A\nint x;\n#else\nint y;\n#endif\n")
        assert "int y;" in out and "int x;" not in out

    def test_elif_chain(self):
        src = ("#define V 2\n#if V == 1\nint a;\n#elif V == 2\n"
               "int b;\n#else\nint c;\n#endif\n")
        out = preprocess(src)
        assert "int b;" in out
        assert "int a;" not in out and "int c;" not in out

    def test_nested_conditionals(self):
        src = ("#define A\n#ifdef A\n#ifdef B\nint x;\n#else\n"
               "int y;\n#endif\n#endif\n")
        out = preprocess(src)
        assert "int y;" in out and "int x;" not in out

    def test_if_arithmetic(self):
        out = preprocess("#if 2*3 > 5\nint x;\n#endif\n")
        assert "int x;" in out

    def test_if_defined_operator(self):
        out = preprocess(
            "#define A\n#if defined(A) && !defined(B)\nint x;\n"
            "#endif\n")
        assert "int x;" in out

    def test_if_ternary(self):
        out = preprocess("#if 1 ? 0 : 1\nint x;\n#endif\n")
        assert "int x;" not in out

    def test_unterminated_if_is_error(self):
        with pytest.raises(PreprocessError):
            preprocess("#if 1\nint x;\n")

    def test_dangling_endif_is_error(self):
        with pytest.raises(PreprocessError):
            preprocess("#endif\n")

    def test_unknown_identifier_is_zero(self):
        out = preprocess("#if UNDEFINED_THING\nint x;\n#endif\n")
        assert "int x;" not in out

    def test_macros_not_defined_in_untaken_branch(self):
        src = ("#ifdef NOPE\n#define X 1\n#endif\n"
               "#ifdef X\nint x;\n#endif\n")
        assert "int x;" not in preprocess(src)


class TestIncludesAndPragmas:
    def test_include_bundled_header(self):
        out = preprocess("#include <stddef.h>\nsize_t n;\n")
        assert "typedef unsigned int size_t;" in out

    def test_include_guard_idempotent(self):
        out = preprocess("#include <stddef.h>\n#include <stddef.h>\n")
        assert out.count("typedef unsigned int size_t;") == 1

    def test_missing_include_is_error(self):
        with pytest.raises(PreprocessError):
            preprocess('#include "no_such_file.h"\n')

    def test_include_dirs(self, tmp_path):
        (tmp_path / "mine.h").write_text("int mine;\n")
        out = preprocess('#include "mine.h"\n',
                         include_dirs=[str(tmp_path)])
        assert "int mine;" in out

    def test_pragma_passthrough(self):
        out = preprocess(
            '#pragma ccuredWrapperOf("w", "strchr")\n')
        assert '#pragma ccuredWrapperOf("w", "strchr")' in out

    def test_error_directive(self):
        with pytest.raises(PreprocessError, match="boom"):
            preprocess("#error boom\n")

    def test_error_in_untaken_branch_ignored(self):
        out = preprocess("#if 0\n#error nope\n#endif\nint x;\n")
        assert "int x;" in out

    def test_unknown_directive_is_error(self):
        with pytest.raises(PreprocessError):
            preprocess("#frobnicate\n")


class TestMacroObjects:
    def test_macro_repr_roundtrip(self):
        m = Macro("F", "x+1", ["x"])
        assert m.is_function
        assert Macro("N", "3").is_function is False

    def test_preprocessor_instance_reuse(self):
        pp = Preprocessor(defines={"A": "1"})
        out1 = pp.preprocess("#define B 2\nint x = A + B;\n")
        assert "1 + 2" in out1.replace("  ", " ")
