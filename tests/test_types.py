"""Unit tests for the CIL type system and the ILP32 layout model."""

import pytest

from repro.cil import types as T


class TestScalarSizes:
    @pytest.mark.parametrize("kind,size", [
        (T.IKind.CHAR, 1), (T.IKind.UCHAR, 1), (T.IKind.SHORT, 2),
        (T.IKind.USHORT, 2), (T.IKind.INT, 4), (T.IKind.UINT, 4),
        (T.IKind.LONG, 4), (T.IKind.ULONG, 4), (T.IKind.LLONG, 8),
        (T.IKind.ULLONG, 8), (T.IKind.BOOL, 1),
    ])
    def test_int_sizes(self, kind, size):
        assert T.TInt(kind).size() == size

    def test_float_sizes(self):
        assert T.TFloat(T.FKind.FLOAT).size() == 4
        assert T.TFloat(T.FKind.DOUBLE).size() == 8

    def test_pointer_is_one_word(self):
        assert T.ptr(T.int_t()).size() == 4
        assert T.ptr(T.ptr(T.double_t())).size() == 4

    def test_void_has_no_size(self):
        with pytest.raises(T.IncompleteTypeError):
            T.void_t().size()

    def test_signedness(self):
        assert T.IKind.INT.is_signed
        assert not T.IKind.UINT.is_signed
        assert T.IKind.CHAR.is_signed  # char is signed on this target


class TestArrays:
    def test_array_size(self):
        assert T.array(T.int_t(), 10).size() == 40

    def test_nested_array(self):
        assert T.array(T.array(T.char_t(), 3), 4).size() == 12

    def test_incomplete_array(self):
        with pytest.raises(T.IncompleteTypeError):
            T.array(T.int_t(), None).size()


def mk_struct(name, *fields):
    return T.CompInfo(True, name,
                      [T.FieldInfo(n, t) for n, t in fields])


def mk_union(name, *fields):
    c = T.CompInfo(False, name)
    c.set_fields([T.FieldInfo(n, t) for n, t in fields])
    return c


class TestStructLayout:
    def test_sequential_offsets(self):
        c = mk_struct("s1", ("a", T.int_t()), ("b", T.int_t()))
        lay = T.comp_layout(c)
        assert lay.offsets == {"a": 0, "b": 4}
        assert lay.size == 8

    def test_alignment_padding(self):
        c = mk_struct("s2", ("c", T.char_t()), ("i", T.int_t()))
        lay = T.comp_layout(c)
        assert lay.offsets == {"c": 0, "i": 4}
        assert lay.size == 8

    def test_double_alignment_capped_at_word(self):
        # ILP32 x86: double aligns to 4, like gcc -m32.
        c = mk_struct("s3", ("c", T.char_t()), ("d", T.double_t()))
        lay = T.comp_layout(c)
        assert lay.offsets["d"] == 4
        assert lay.size == 12

    def test_trailing_padding(self):
        c = mk_struct("s4", ("i", T.int_t()), ("c", T.char_t()))
        assert T.comp_layout(c).size == 8

    def test_field_offset_helper(self):
        c = mk_struct("s5", ("a", T.char_t()), ("b", T.int_t()))
        assert T.field_offset(c.field("b")) == 4

    def test_union_overlays(self):
        u = mk_union("u1", ("i", T.int_t()), ("d", T.double_t()))
        lay = T.comp_layout(u)
        assert lay.offsets == {"i": 0, "d": 0}
        assert lay.size == 8

    def test_empty_struct(self):
        c = mk_struct("s6")
        assert T.comp_layout(c).size == 0

    def test_incomplete_struct_layout_fails(self):
        c = T.CompInfo(True, "fwd")
        with pytest.raises(T.IncompleteTypeError):
            T.comp_layout(c)

    def test_missing_field_raises(self):
        c = mk_struct("s7", ("a", T.int_t()))
        with pytest.raises(KeyError):
            c.field("nope")


class TestSignaturesAndEquality:
    def test_identical_scalars_equal(self):
        assert T.TInt(T.IKind.INT) == T.TInt(T.IKind.INT)
        assert T.TInt(T.IKind.INT) != T.TInt(T.IKind.UINT)

    def test_pointer_structural_equality(self):
        assert T.ptr(T.int_t()) == T.ptr(T.int_t())
        assert T.ptr(T.int_t()) != T.ptr(T.char_t())

    def test_distinct_structs_not_equal(self):
        a = mk_struct("same", ("x", T.int_t()))
        b = mk_struct("same", ("x", T.int_t()))
        assert T.TComp(a) != T.TComp(b)  # nominal identity

    def test_typedef_transparent(self):
        td = T.TNamed("myint", T.int_t())
        assert td == T.int_t()
        assert td.size() == 4

    def test_enum_sig_is_int(self):
        e = T.TEnum(T.EnumInfo("color", [("R", 0)]))
        assert e == T.int_t()

    def test_function_sig(self):
        f1 = T.TFun(T.int_t(), [("x", T.int_t())])
        f2 = T.TFun(T.int_t(), [("y", T.int_t())])
        f3 = T.TFun(T.int_t(), [("x", T.char_t())])
        assert f1 == f2  # parameter names do not matter
        assert f1 != f3

    def test_sig_hashable(self):
        s = {T.ptr(T.int_t()), T.ptr(T.int_t()), T.int_t()}
        assert len(s) == 2


class TestPredicates:
    def test_unroll(self):
        td = T.TNamed("a", T.TNamed("b", T.int_t()))
        assert isinstance(T.unroll(td), T.TInt)

    def test_is_pointer_through_typedef(self):
        td = T.TNamed("p", T.ptr(T.int_t()))
        assert T.is_pointer(td)

    def test_is_arithmetic(self):
        assert T.is_arithmetic(T.double_t())
        assert T.is_arithmetic(T.int_t())
        assert not T.is_arithmetic(T.ptr(T.int_t()))

    def test_is_scalar(self):
        assert T.is_scalar(T.ptr(T.void_t()))
        assert not T.is_scalar(T.array(T.int_t(), 2))

    def test_type_of_pointed(self):
        assert T.type_of_pointed(T.ptr(T.char_t())) == T.char_t()
        with pytest.raises(TypeError):
            T.type_of_pointed(T.int_t())

    def test_default_kind_is_safe(self):
        from repro.core.qualifiers import PointerKind
        assert T.ptr(T.int_t()).kind is PointerKind.SAFE
