"""The content-addressed cure cache: keys, invalidation, recovery.

The cache's contract has three legs — correctness (a hit is
byte-identical to a fresh cure), self-invalidation (any input that
could change the cure changes the key), and robustness (corrupt or
stale entries fall back to a fresh cure, never crash).  Each leg is
pinned here.
"""

import os
import pickle

import pytest

from repro.bench.harness import clear_program_cache, pristine_cure, \
    pristine_parse
from repro.cache import (CACHE_SCHEMA, canonical_options, cure_key,
                         get_cache, options_key, parse_key)
from repro.core import CureOptions
from repro.workloads import get

W = "olden_power"


@pytest.fixture
def fresh_cache(tmp_path, monkeypatch):
    """A cold cache in a private directory, plus cold in-process
    caches, so every test starts from zero counters."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    monkeypatch.delenv("REPRO_CACHE", raising=False)
    clear_program_cache()
    yield get_cache()
    clear_program_cache()


# -- keys --------------------------------------------------------------------


def test_key_changes_with_source_text():
    a = cure_key("int main(void){return 0;}", (), "p",
                 canonical_options(None))
    b = cure_key("int main(void){return 1;}", (), "p",
                 canonical_options(None))
    assert a != b
    assert parse_key("x", (), "p") != parse_key("y", (), "p")


def test_key_changes_with_suppressions_and_name():
    opts = canonical_options(None)
    src = "int main(void){return 0;}"
    assert cure_key(src, (), "p", opts) \
        != cure_key(src, (("p.c", 3),), "p", opts)
    assert parse_key(src, (), "p") != parse_key(src, (), "q")


def test_key_changes_with_options():
    src = "int main(void){return 0;}"
    flow = canonical_options(CureOptions(optimize="flow"))
    none = canonical_options(CureOptions(optimize="none"))
    trust = canonical_options(None, trust_bad_casts=True)
    keys = {cure_key(src, (), "p", o) for o in (flow, none, trust)}
    assert len(keys) == 3


def test_key_changes_with_schema():
    src = "int main(void){return 0;}"
    opts = canonical_options(None)
    assert cure_key(src, (), "p", opts) \
        != cure_key(src, (), "p", opts, schema=CACHE_SCHEMA + "-next")
    assert parse_key(src, (), "p") \
        != parse_key(src, (), "p", schema=CACHE_SCHEMA + "-next")


def test_options_key_canonicalizes_optimize_aliases():
    # optimize/optimize_checks fold into one canonical level entry:
    # the historical spelling and the level spelling share a key.
    assert options_key(CureOptions(optimize_checks=False)) \
        == options_key(CureOptions(optimize="none"))


# -- hits are byte-identical -------------------------------------------------


def test_warm_hit_reproduces_cure_byte_identically(fresh_cache):
    w = get(W)
    cold = pristine_cure(w)
    cold_c = cold.to_c()
    cold_report = cold.report()
    clear_program_cache()          # force the disk path
    warm = pristine_cure(w)
    assert fresh_cache.session.hits >= 1
    assert warm.to_c() == cold_c
    assert warm.report() == cold_report


def test_warm_hit_reproduces_metrics_byte_identically(fresh_cache):
    from repro.obs.metrics import collect_workload_metrics
    from repro.obs.serialize import stable_dumps
    w = get(W)
    cold = stable_dumps(collect_workload_metrics(w).to_json())
    clear_program_cache()
    warm = stable_dumps(collect_workload_metrics(w).to_json())
    assert warm == cold


# -- counters ----------------------------------------------------------------


def test_deterministic_counter_sequence(fresh_cache):
    w = get(W)
    pristine_parse(w)
    pristine_cure(w)
    s = fresh_cache.stats()
    # cold: one parse miss+store, one cure miss+store
    assert (s.hits, s.misses, s.stores) == (0, 2, 2)
    clear_program_cache()
    pristine_cure(w)               # warm: cure hit, no parse needed
    s = fresh_cache.stats()
    assert (s.hits, s.misses, s.stores) == (1, 2, 2)
    assert s.entries == 2
    assert s.bytes > 0


def test_cache_clear_resets_everything(fresh_cache):
    w = get(W)
    pristine_cure(w)
    assert fresh_cache.stats().entries == 2
    removed = fresh_cache.clear()
    assert removed == 2
    s = fresh_cache.stats()
    assert (s.entries, s.hits, s.misses, s.stores) == (0, 0, 0, 0)


# -- robustness --------------------------------------------------------------


def test_corrupt_entry_recovers_with_fresh_cure(fresh_cache):
    w = get(W)
    cold_c = pristine_cure(w).to_c()
    # truncate every stored entry to simulate a torn write
    for dirpath, _dirs, files in os.walk(fresh_cache.root):
        for fn in files:
            if fn.endswith(".pkl"):
                with open(os.path.join(dirpath, fn), "wb") as f:
                    f.write(b"\x80corrupt")
    clear_program_cache()
    warm = pristine_cure(w)        # must fall back, not crash
    assert warm.to_c() == cold_c
    assert fresh_cache.session.invalidated >= 1
    # the corrupt entries were dropped and re-stored
    assert fresh_cache.stats().entries == 2


def test_stale_payload_version_is_invalidated(fresh_cache):
    w = get(W)
    pristine_cure(w)
    for dirpath, _dirs, files in os.walk(fresh_cache.root):
        for fn in files:
            if not fn.endswith(".pkl"):
                continue
            path = os.path.join(dirpath, fn)
            with open(path, "rb") as f:
                payload = pickle.load(f)
            payload["version"] = -1
            with open(path, "wb") as f:
                pickle.dump(payload, f)
    clear_program_cache()
    assert pristine_cure(w).to_c()          # falls back cleanly
    assert fresh_cache.session.invalidated >= 1


def test_disabled_cache_stores_nothing(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "off"))
    monkeypatch.setenv("REPRO_CACHE", "off")
    clear_program_cache()
    disk = get_cache()
    assert not disk.enabled
    pristine_cure(get(W))
    assert not os.path.exists(os.path.join(str(tmp_path / "off"),
                                           "objects"))
    s = disk.stats()
    assert (s.hits, s.misses, s.stores) == (0, 0, 0)
    clear_program_cache()


def test_store_survives_unpicklable_value(fresh_cache):
    ok = fresh_cache.store("00" * 32, lambda: None)
    assert ok is False             # declined, not crashed
    assert fresh_cache.load("00" * 32) is None


# -- concurrency -------------------------------------------------------------


def test_concurrent_writers_race_benignly(fresh_cache):
    # Two pool workers cure the same workload at the same time; both
    # write the same content address, the last rename wins, and the
    # entry remains loadable and correct.
    from repro.sweep import run_sharded
    tasks = [("lint", {"name": W, "optimize": "flow", "scale": None})
             for _ in range(2)]
    a, b = run_sharded(tasks, 2)
    assert a.to_json() == b.to_json()
    clear_program_cache()
    assert pristine_cure(get(W)).to_c()
    s = fresh_cache.stats()
    # parse + the lint cure (provenance on) + the default cure
    assert s.entries == 3
    assert s.stores >= 3


def test_hit_rate_pct(fresh_cache):
    from repro.cache.store import CacheStats
    assert CacheStats().hit_rate_pct is None        # never asked
    assert CacheStats(hits=3, misses=1).hit_rate_pct == 75.0
    assert CacheStats(hits=0, misses=4).hit_rate_pct == 0.0
    s = CacheStats(hits=1, misses=2)
    assert s.to_json()["hit_rate_pct"] == s.hit_rate_pct


def test_cli_cache_stats_reports_hit_rate(fresh_cache, capsys):
    import json as _json

    from repro.cli import main
    w = get("olden_power")
    pristine_cure(w)                                 # miss + store
    clear_program_cache()
    pristine_cure(w)                                 # hit
    assert main(["cache", "stats"]) == 0
    out = capsys.readouterr().out
    assert "hit rate" in out and "cross-process" in out
    assert "session" in out
    assert main(["cache", "stats", "--json", "-"]) == 0
    payload = _json.loads(capsys.readouterr().out)
    assert payload["hit_rate_pct"] is not None
    assert 0.0 <= payload["hit_rate_pct"] <= 100.0
    assert payload["session"]["hit_rate_pct"] is None \
        or 0.0 <= payload["session"]["hit_rate_pct"] <= 100.0
