"""Tests for the Purify-like and Valgrind-like baseline checkers:
what they catch, what they miss, and their overhead shape versus
CCured (the comparison underpinning Section 5 of the paper)."""

import pytest

from helpers import cure_src

from repro.baselines import (BaselineViolation, PurifyChecker,
                             ValgrindChecker)
from repro.frontend import parse_program
from repro.interp import run_cured, run_raw
from repro.runtime.checks import MemorySafetyError

HEAP_OVERRUN = """
#include <stdlib.h>
int main(void) {
  int *a = (int *)malloc(4 * sizeof(int));
  a[5] = 1;
  return 0;
}
"""

USE_AFTER_FREE = """
#include <stdlib.h>
int main(void) {
  int *p = (int *)malloc(sizeof(int));
  *p = 3;
  free(p);
  return *p;
}
"""

STACK_OOB = """
int main(void) {
  int a[4];
  int b[4];
  int i = 5;
  a[i] = 99;      /* lands inside b */
  return b[0] >= 0 ? 0 : 0;
}
"""

INTER_OBJECT = """
#include <stdlib.h>
int main(void) {
  int *a = (int *)malloc(16);
  int *b = (int *)malloc(16);
  /* pointer arithmetic that lands inside the *other* block */
  int diff = (int)(b - a);
  a[diff] = 7;    /* writes b[0]: both tools think it is fine */
  return 0;
}
"""

CLEAN = """
#include <stdlib.h>
int main(void) {
  int i, s = 0;
  int *a = (int *)malloc(64 * sizeof(int));
  for (i = 0; i < 64; i++) a[i] = i;
  for (i = 0; i < 64; i++) s += a[i];
  free(a);
  return s % 251;
}
"""


@pytest.mark.parametrize("tool", [PurifyChecker, ValgrindChecker])
class TestDetection:
    def test_heap_overrun_caught(self, tool):
        with pytest.raises(BaselineViolation):
            run_raw(parse_program(HEAP_OVERRUN, "t"), shadow=tool())

    def test_use_after_free_caught(self, tool):
        with pytest.raises(BaselineViolation):
            run_raw(parse_program(USE_AFTER_FREE, "t"), shadow=tool())

    def test_double_free_caught(self, tool):
        src = """
        #include <stdlib.h>
        int main(void) {
          int *p = (int *)malloc(4);
          free(p);
          free(p);
          return 0;
        }
        """
        with pytest.raises(BaselineViolation):
            run_raw(parse_program(src, "t"), shadow=tool())

    def test_stack_oob_missed(self, tool):
        # The paper: "these other tools do not catch out-of-bounds
        # array indexing on stack-allocated arrays".
        res = run_raw(parse_program(STACK_OOB, "t"), shadow=tool())
        assert res.status == 0  # ran to completion, no report

    def test_inter_object_arith_missed(self, tool):
        # Jones/Kelly-style inter-region arithmetic: both tools accept
        # an access landing in another live block.
        res = run_raw(parse_program(INTER_OBJECT, "t"), shadow=tool())
        assert res.status == 0

    def test_clean_program_unaffected(self, tool):
        res = run_raw(parse_program(CLEAN, "t"), shadow=tool())
        assert res.status == sum(range(64)) % 251


class TestCCuredCatchesWhatTheyMiss:
    def test_stack_oob(self):
        with pytest.raises(MemorySafetyError):
            run_cured(cure_src(STACK_OOB))

    def test_inter_object_arith(self):
        with pytest.raises(MemorySafetyError):
            run_cured(cure_src(INTER_OBJECT))


class TestOverheadShape:
    def test_ordering_raw_ccured_tools(self):
        """The paper's headline: CCured is far cheaper than Purify and
        Valgrind; all are slower than raw."""
        raw = run_raw(parse_program(CLEAN, "r"))
        cured = run_cured(cure_src(CLEAN))
        pur = run_raw(parse_program(CLEAN, "p"),
                      shadow=PurifyChecker())
        val = run_raw(parse_program(CLEAN, "v"),
                      shadow=ValgrindChecker())
        assert raw.cycles < cured.cycles
        assert cured.cycles * 3 < pur.cycles
        assert cured.cycles * 3 < val.cycles

    def test_ccured_overhead_moderate(self):
        raw = run_raw(parse_program(CLEAN, "r"))
        cured = run_cured(cure_src(CLEAN))
        ratio = cured.cycles / raw.cycles
        assert 1.0 < ratio < 3.5  # the paper's worst case is ~2.2x

    def test_tool_overheads_in_published_band(self):
        raw = run_raw(parse_program(CLEAN, "r"))
        pur = run_raw(parse_program(CLEAN, "p"),
                      shadow=PurifyChecker())
        val = run_raw(parse_program(CLEAN, "v"),
                      shadow=ValgrindChecker())
        assert 9 <= pur.cycles / raw.cycles <= 130
        assert 9 <= val.cycles / raw.cycles <= 130

    def test_deterministic_cycles(self):
        a = run_raw(parse_program(CLEAN, "a"), shadow=PurifyChecker())
        b = run_raw(parse_program(CLEAN, "b"), shadow=PurifyChecker())
        assert a.cycles == b.cycles
