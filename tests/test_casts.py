"""Tests for cast classification and the cast census (paper Section 3)."""

import pytest

from repro.cil import types as T
from repro.core import CastClass, classify_types, cure
from repro.core.casts import CastCensus, CastRecord


def S(name, *fields):
    return T.TComp(T.CompInfo(
        True, name, [T.FieldInfo(n, t) for n, t in fields]))


class TestClassifyTypes:
    def setup_method(self):
        self.figure = S("FigC", ("tag", T.int_t()))
        self.circle = S("CirC", ("tag", T.int_t()),
                        ("radius", T.int_t()))

    def test_scalar(self):
        assert classify_types(T.int_t(), T.double_t()) is \
            CastClass.SCALAR

    def test_ptr_to_int(self):
        assert classify_types(T.ptr(T.int_t()), T.int_t()) is \
            CastClass.PTR_TO_INT

    def test_int_to_ptr(self):
        assert classify_types(T.int_t(), T.ptr(T.int_t())) is \
            CastClass.INT_TO_PTR

    def test_identical(self):
        assert classify_types(T.ptr(T.int_t()), T.ptr(T.int_t())) is \
            CastClass.IDENTICAL

    def test_physically_equal_is_identical(self):
        wrapped = S("WrapC", ("x", T.int_t()))
        assert classify_types(T.ptr(wrapped), T.ptr(T.int_t())) is \
            CastClass.IDENTICAL

    def test_upcast(self):
        assert classify_types(T.ptr(self.circle),
                              T.ptr(self.figure)) is CastClass.UPCAST

    def test_downcast(self):
        assert classify_types(T.ptr(self.figure),
                              T.ptr(self.circle)) is CastClass.DOWNCAST

    def test_to_void_star_is_upcast(self):
        assert classify_types(T.ptr(self.circle),
                              T.ptr(T.void_t())) is CastClass.UPCAST

    def test_from_void_star_is_downcast(self):
        assert classify_types(T.ptr(T.void_t()),
                              T.ptr(self.circle)) is CastClass.DOWNCAST

    def test_unrelated_is_bad(self):
        assert classify_types(T.ptr(T.int_t()),
                              T.ptr(T.char_t())) is CastClass.BAD

    def test_function_pointer_identical(self):
        f = T.TFun(T.int_t(), [("x", T.int_t())])
        g = T.TFun(T.int_t(), [("y", T.int_t())])
        assert classify_types(T.ptr(f), T.ptr(g)) is \
            CastClass.IDENTICAL

    def test_function_pointer_mismatch_bad(self):
        f = T.TFun(T.int_t(), [("x", T.int_t())])
        g = T.TFun(T.int_t(), [("x", T.double_t())])
        assert classify_types(T.ptr(f), T.ptr(g)) is CastClass.BAD


class TestCensusOnPrograms:
    def test_null_casts_not_counted_as_pointer_casts(self):
        cured = cure("int main(void){ int *p = 0; return p == 0; }")
        assert cured.census.count(CastClass.NULL_TO_PTR) >= 0
        assert cured.census.count(CastClass.BAD) == 0

    def test_figure_circle_census(self, figure_circle_src):
        cured = cure(figure_circle_src)
        c = cured.census
        assert c.count(CastClass.UPCAST) == 1
        assert c.count(CastClass.DOWNCAST) == 1
        assert c.count(CastClass.BAD) == 0

    def test_identical_cast_counted(self):
        src = """
        int main(void) { int x; int *p = &x; int *q = (int*)p;
          return *q; }
        """
        cured = cure(src)
        assert cured.census.count(CastClass.IDENTICAL) == 1

    def test_trusted_cast_counted(self):
        src = """
        #include <ccured.h>
        int main(void) {
          int x = 5;
          int *p = &x;
          char *c = (char*)__trusted_cast(p);
          return c != 0;
        }
        """
        cured = cure(src)
        assert cured.trusted_casts >= 1
        assert cured.census.count(CastClass.BAD) == 0

    def test_trust_all_option(self):
        src = """
        int main(void) { int x; int *p = &x;
          char *c = (char*)p; return c != 0; }
        """
        from repro.core import CureOptions
        cured = cure(src, options=CureOptions(trust_bad_casts=True))
        assert cured.census.count(CastClass.BAD) == 0
        assert cured.census.count(CastClass.TRUSTED) == 1
        pct = cured.kind_percentages()
        assert pct["wild"] == 0.0

    def test_fractions_sum(self):
        src = """
        struct A { int x; };
        struct B { int x; int y; };
        int main(void) {
          struct B b;
          struct A *a = (struct A*)&b;     /* upcast */
          struct B *b2 = (struct B*)a;     /* downcast */
          void *v = (void*)b2;             /* upcast */
          int *bad = (int*)1;              /* int->ptr */
          return bad == (int*)0;
        }
        """
        cured = cure(src)
        f = cured.census.fractions()
        assert f["upcast"] + f["downcast"] + f["bad"] == \
            pytest.approx(1.0)

    def test_summary_text(self):
        census = CastCensus()
        census.add(CastRecord(T.ptr(T.int_t()), T.ptr(T.int_t()),
                              CastClass.IDENTICAL))
        assert "identical" in census.summary()
