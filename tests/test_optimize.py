"""Unit tests for straight-line redundant-check elimination.

These exercise the ``local`` level (the within-InstrStmt pass of
``core/optimize.py``); the count assertions pin ``optimize="local"``
explicitly because the default ``flow`` level eliminates strictly
more (e.g. every check here whose pointer has ``&x`` provenance).
The flow-sensitive pass has its own suite in ``test_analysis.py``.
"""

from helpers import cure_src

from repro.cil.stmt import CheckKind
from repro.core import CureOptions, cure
from repro.interp import run_cured


def check_count(cured, kind):
    return cured.check_counts.get(kind, 0) - sum(
        1 for _ in ())  # counts are pre-elimination


def count_printed_checks(cured, name: str) -> int:
    return cured.to_c().count(f"__{name}(")


class TestElimination:
    def test_duplicate_null_checks_merged(self):
        cured = cure_src("""
        struct s { int a; int b; };
        int main(void) {
          struct s v;
          struct s *p = &v;
          p->a = 1;
          p->b = 2;
          return p->a;
        }
        """)
        assert cured.checks_removed >= 1

    def test_write_to_checked_var_invalidates(self):
        cured = cure_src("""
        int main(void) {
          int x = 1, y = 2;
          int *p = &x;
          int a = *p;
          p = &y;          /* p changes: the next check must stay */
          int b = *p;
          return a + b;
        }
        """, optimize="local")
        # Two NULL checks survive: one per distinct p value.
        assert count_printed_checks(cured, "CHECK_NULL") == 2

    def test_call_invalidates_everything(self):
        cured = cure_src("""
        int g;
        int touch(void) { g = 1; return 0; }
        int main(void) {
          int x = 1;
          int *p = &x;
          int a = *p;
          touch();
          int b = *p;
          return a + b;
        }
        """, optimize="local")
        assert count_printed_checks(cured, "CHECK_NULL") >= 2

    def test_memory_write_keeps_register_checks(self):
        cured = cure_src("""
        struct s { int a; int b; };
        int main(void) {
          struct s v;
          struct s *p = &v;
          p->a = 1;        /* memory write: p itself is a register */
          p->b = 2;        /* the second NULL check is redundant */
          return 0;
        }
        """, optimize="local")
        assert count_printed_checks(cured, "CHECK_NULL") == 1

    def test_seq_bounds_deduplicated(self):
        cured = cure_src("""
        int main(void) {
          int arr[4];
          int *p = arr;
          int i = 2;
          p[i] = 1;
          return p[i] + p[i];
        }
        """)
        noopt = cure("""
        int main(void) {
          int arr[4];
          int *p = arr;
          int i = 2;
          p[i] = 1;
          return p[i] + p[i];
        }
        """, options=CureOptions(optimize_checks=False), name="n")
        assert count_printed_checks(cured, "CHECK_SEQ_BOUNDS") < \
            count_printed_checks(noopt, "CHECK_SEQ_BOUNDS")

    def test_disabled_by_option(self):
        src = """
        struct s { int a; int b; };
        int main(void) {
          struct s v; struct s *p = &v;
          p->a = 1; p->b = 2;
          return 0;
        }
        """
        noopt = cure(src, options=CureOptions(optimize_checks=False),
                     name="noopt")
        assert noopt.checks_removed == 0

    def test_behaviour_preserved(self):
        src = """
        struct node { int v; struct node *next; };
        int main(void) {
          struct node a;
          struct node b;
          a.v = 1; a.next = &b;
          b.v = 2; b.next = 0;
          struct node *p = &a;
          int total = 0;
          while (p != (struct node *)0) {
            total += p->v + p->v;
            p = p->next;
          }
          return total;
        }
        """
        r_opt = run_cured(cure(src, name="a"))
        r_no = run_cured(cure(
            src, options=CureOptions(optimize_checks=False), name="b"))
        assert r_opt.status == r_no.status == 6
        assert r_opt.cycles <= r_no.cycles

    def test_aliased_write_invalidates_memory_checks(self):
        """``p = 0`` through an address-taken variable must kill the
        remembered ``CHECK_NULL(*pp)`` (its value is read through
        memory), or the second dereference goes unchecked."""
        import pytest
        from repro.runtime.checks import NullDereferenceError
        cured = cure_src("""
        int main(void) {
          int x = 1;
          int *p = &x;
          int **pp = &p;
          int a = **pp;
          p = 0;           /* aliases *pp: memory checks must die */
          int b = **pp;
          return a + b;
        }
        """, optimize="local")
        src = cured.to_c()
        # The CHECK_NULL(pp) repeat is elided; the *pp one is not.
        assert src.count("__CHECK_NULL((*pp))") == 2
        with pytest.raises(NullDereferenceError):
            run_cured(cured)

    def test_vars_of_exp_unknown_kind_is_conservative(self):
        """A new Exp subclass the walker does not know must be
        treated as memory-reading, never silently pure."""
        from repro.cil import expr as E
        from repro.core.optimize import _vars_of_exp

        class FancyExp(E.Exp):
            pass

        out: set[int] = set()
        assert _vars_of_exp(FancyExp(), out) is True
        # The known leaf kinds stay pure.
        assert _vars_of_exp(E.Const(1), out) is False

    def test_safety_still_enforced_after_elimination(self):
        import pytest
        from repro.runtime.checks import NullDereferenceError
        cured = cure_src("""
        struct s { int a; int b; };
        int main(void) {
          struct s *p = 0;
          p->a = 1;        /* only one check left, still fires */
          p->b = 2;
          return 0;
        }
        """)
        with pytest.raises(NullDereferenceError):
            run_cured(cured)
