"""Integration tests over the workload suite.

Every workload must: parse, cure without WILD surprises, run
identically cured and raw on its benign input, and stay within its
documented kind profile.  (The overhead and exploit assertions live in
``benchmarks/``; these tests pin the functional behaviour.)
"""

import pytest

from repro.interp import run_cured, run_raw
from repro.workloads import (WORKLOADS, all_workloads, by_category,
                             get)

ALL_NAMES = sorted(WORKLOADS)


class TestRegistry:
    def test_counts(self):
        assert len(all_workloads()) >= 20
        assert len(by_category("apache")) == 10
        assert len(by_category("system")) == 7

    def test_every_workload_has_paper_row(self):
        for w in all_workloads():
            assert w.paper_row, w.name
            assert w.description, w.name

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError):
            get("no_such_workload")

    def test_sources_nonempty(self):
        for w in all_workloads():
            assert len(w.source()) > 200, w.name


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_cures_and_runs(name):
    w = get(name)
    cured = w.cure(scale=1)
    rc = run_cured(cured, stdin=w.stdin, args=list(w.args) or None)
    rr = run_raw(w.parse(scale=1), stdin=w.stdin,
                 args=list(w.args) or None)
    assert rc.status == rr.status, name
    assert rc.stdout == rr.stdout, name


@pytest.mark.parametrize("name", ALL_NAMES)
def test_workload_has_no_wild_pointers(name):
    """After the paper's techniques (physical subtyping, RTTI, trusted
    casts where configured), no workload needs WILD pointers."""
    w = get(name)
    cured = w.cure(scale=1)
    assert cured.kind_percentages()["wild"] == 0.0, name


def test_scaling_changes_work(teardown=None):
    w = get("olden_bisort")
    small = run_cured(w.cure(scale=3))
    big = run_cured(w.cure(scale=6))
    assert big.steps > small.steps


def test_ijpeg_generator_parametric():
    from repro.workloads import ijpeg_gen
    src_small = ijpeg_gen.generate(n_types=4, n_objects=6, n_rounds=1)
    src_big = ijpeg_gen.generate(n_types=16, n_objects=6, n_rounds=1)
    assert "struct comp4" in src_small
    assert "struct comp16" in src_big
    assert "struct comp16" not in src_small


def test_attack_inputs_defined_for_vulnerable_daemons():
    assert get("ftpd").attack_stdin is not None
    assert get("sendmail_like").attack_args is not None


def test_bind_uses_trusted_casts():
    assert get("bind_like").trust_bad_casts
    cured = get("bind_like").cure(scale=1)
    assert cured.trusted_casts >= 1
