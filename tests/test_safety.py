"""Safety tests: every class of memory error must be caught by the
cured program — the memory-safety guarantee of the paper.

Each test also documents what the *uncured* program does (silent
corruption or a hardware fault), which is the contrast the paper's
security argument rests on.
"""

import pytest

from helpers import cure_src

from repro.core import CureOptions, cure
from repro.frontend import parse_program
from repro.interp import run_cured, run_raw
from repro.runtime.checks import (BoundsError, CompatibilityError,
                                  DanglingPointerError,
                                  MemorySafetyError,
                                  NullDereferenceError, ProgramAbort,
                                  RttiCastError, SegmentationFault,
                                  StackEscapeError, WildTagError)


def assert_caught(src: str, exc=MemorySafetyError, **opts):
    cured = cure_src(src, **opts)
    with pytest.raises(exc):
        run_cured(cured)
    return cured


class TestNullChecks:
    def test_null_safe_deref(self):
        assert_caught("""
        int main(void) { int *p = 0; return *p; }
        """, NullDereferenceError)

    def test_null_through_function(self):
        assert_caught("""
        int get(int *p) { return *p; }
        int main(void) { return get(0); }
        """, NullDereferenceError)

    def test_null_struct_member(self):
        assert_caught("""
        struct s { int v; };
        int main(void) { struct s *p = 0; return p->v; }
        """, NullDereferenceError)

    def test_null_function_pointer(self):
        assert_caught("""
        int main(void) {
          int (*fp)(int) = 0;
          return fp(1);
        }
        """, NullDereferenceError)

    def test_null_write(self):
        assert_caught("""
        int main(void) { int *p = 0; *p = 1; return 0; }
        """, NullDereferenceError)


class TestBoundsChecks:
    def test_seq_overrun_read(self):
        assert_caught("""
        int main(void) {
          int a[4];
          int *p = a;
          return p[4];
        }
        """, BoundsError)

    def test_seq_underrun(self):
        assert_caught("""
        int main(void) {
          int a[4];
          int *p = a;
          p = p - 1;
          return *p;
        }
        """, BoundsError)

    def test_heap_overrun_write(self):
        assert_caught("""
        #include <stdlib.h>
        int main(void) {
          int *a = (int *)malloc(4 * sizeof(int));
          a[4] = 1;
          return 0;
        }
        """, BoundsError)

    def test_off_by_one_loop(self):
        assert_caught("""
        int main(void) {
          int a[10];
          int i;
          int *p = a;
          for (i = 0; i <= 10; i++) p[i] = i;
          return 0;
        }
        """, BoundsError)

    def test_static_index_oob(self):
        assert_caught("""
        int main(void) { int a[4]; int i = 6; a[i] = 1; return 0; }
        """, BoundsError)

    def test_negative_index(self):
        assert_caught("""
        int main(void) { int a[4]; int i = -1; return a[i]; }
        """, BoundsError)

    def test_strcpy_overflow(self):
        assert_caught("""
        #include <string.h>
        int main(void) {
          char small[4];
          strcpy(small, "much too long");
          return 0;
        }
        """, BoundsError)

    def test_sprintf_overflow(self):
        assert_caught(r'''
        #include <stdio.h>
        int main(void) {
          char small[4];
          sprintf(small, "%d-%d-%d", 100, 200, 300);
          return 0;
        }
        ''', BoundsError)

    def test_memcpy_overflow(self):
        assert_caught("""
        #include <string.h>
        int main(void) {
          char src[16];
          char dst[8];
          memcpy(dst, src, 16);
          return 0;
        }
        """, BoundsError)

    def test_string_not_terminated(self):
        assert_caught("""
        #include <string.h>
        int main(void) {
          char raw[4];
          raw[0] = 'a'; raw[1] = 'b'; raw[2] = 'c'; raw[3] = 'd';
          return (int)strlen(raw);  /* no NUL within bounds */
        }
        """, BoundsError)

    def test_in_bounds_boundary_access_allowed(self):
        c = cure_src("""
        int main(void) {
          int a[4];
          int *p = a;
          p[3] = 7;          /* last element: fine */
          int *q = a;
          q = q + 4;         /* one past the end: fine to form (SEQ) */
          return p[3] + (q - a == 4);
        }
        """)
        assert run_cured(c).status == 8

    def test_one_past_end_to_safe_traps(self):
        # Figure 10: a SAFE pointer is null or *valid*; converting a
        # one-past-the-end SEQ pointer to SAFE fails the SEQ->SAFE
        # check, exactly as in CCured.
        assert_caught("""
        int main(void) {
          int a[4];
          int *q = a + 4;   /* q is inferred SAFE: conversion traps */
          return q == a + 4;
        }
        """, MemorySafetyError)

    def test_pointer_diff_stays_legal(self):
        c = cure_src("""
        int main(void) {
          int a[8];
          int *p = a + 6;
          return (int)(p - a);
        }
        """)
        assert run_cured(c).status == 6


class TestIntegerDisguise:
    def test_int_to_ptr_deref_fails(self):
        assert_caught("""
        int main(void) {
          int *p = (int *)1234;
          return *p;
        }
        """, MemorySafetyError)

    def test_int_to_ptr_comparison_allowed(self):
        c = cure_src("""
        int main(void) {
          int *p = (int *)1234;
          return p == (int *)1234;
        }
        """)
        assert run_cured(c).status == 1


class TestRttiChecks:
    def test_bad_downcast(self):
        assert_caught("""
        struct A { int x; };
        struct B { int x; double y; };
        int main(void) {
          struct A a;
          void *v = (void *)&a;
          struct B *b = (struct B *)v;
          b->y = 1.5;
          return 0;
        }
        """, RttiCastError)

    def test_good_downcast_passes(self):
        c = cure_src("""
        struct A { int x; };
        struct B { int x; double y; };
        int main(void) {
          struct B b;
          b.x = 1;
          void *v = (void *)&b;
          struct B *p = (struct B *)v;
          return p->x;
        }
        """)
        assert run_cured(c).status == 1

    def test_downcast_to_sibling_fails(self):
        assert_caught("""
        struct Base { int tag; };
        struct Left { int tag; int l; };
        struct Right { int tag; double r; };
        int main(void) {
          struct Left leftv;
          struct Base *b = (struct Base *)&leftv;
          void *v = (void *)b;
          struct Right *r = (struct Right *)v;
          r->r = 2.0;
          return 0;
        }
        """, RttiCastError)

    def test_null_downcast_allowed(self):
        c = cure_src("""
        struct A { int x; };
        int main(void) {
          void *v = 0;
          struct A *a = (struct A *)v;
          return a == (struct A *)0;
        }
        """)
        assert run_cured(c).status == 1

    def test_malloc_branding(self):
        # malloc memory takes its first checked type; re-casting to an
        # incompatible type later fails.
        assert_caught("""
        #include <stdlib.h>
        struct A { int x; };
        struct B { double y; };
        int main(void) {
          void *v = malloc(sizeof(struct B));
          struct A *a = (struct A *)v;
          a->x = 1;
          struct B *b = (struct B *)v;
          b->y = 2.0;
          return 0;
        }
        """, RttiCastError)

    def test_malloc_too_small_for_cast(self):
        assert_caught("""
        #include <stdlib.h>
        struct Big { double a; double b; double c; };
        int main(void) {
          void *v = malloc(4);
          struct Big *p = (struct Big *)v;
          p->a = 1.0;
          return 0;
        }
        """, MemorySafetyError)


class TestTemporalSafety:
    def test_stack_escape_via_global(self):
        assert_caught("""
        int *g;
        void bad(void) { int local = 1; g = &local; }
        int main(void) { bad(); return *g; }
        """, StackEscapeError)

    def test_stack_escape_via_heap(self):
        assert_caught("""
        #include <stdlib.h>
        struct cell { int *p; };
        int main(void) {
          struct cell *c = (struct cell *)malloc(sizeof(struct cell));
          int local = 5;
          c->p = &local;
          return 0;
        }
        """, StackEscapeError)

    def test_stack_ptr_within_stack_allowed(self):
        c = cure_src("""
        int main(void) {
          int x = 4;
          int *p = &x;
          int **pp = &p;
          return **pp;
        }
        """)
        assert run_cured(c).status == 4

    def test_returning_local_array_caught(self):
        assert_caught("""
        int *make(void) {
          int a[4];
          a[0] = 1;
          int *p = a;
          return p;
        }
        int main(void) { int *p = make(); return *p; }
        """, MemorySafetyError)

    def test_use_after_free_is_memory_safe(self):
        # CCured's allocator (conservative GC semantics): freed homes
        # stay readable, so a dangling read is *memory safe* — the
        # paper's design.  It must not corrupt or crash.
        c = cure_src("""
        #include <stdlib.h>
        int main(void) {
          int *p = (int *)malloc(sizeof(int));
          *p = 7;
          free(p);
          return *p;   /* stale but safe under GC semantics */
        }
        """)
        assert run_cured(c).status == 7


class TestWildPointers:
    def test_wild_round_trip_int(self):
        # Bad casts make WILD pointers, which still work for
        # compatible-size reads/writes.
        c = cure_src("""
        int main(void) {
          unsigned int x = 65;
          unsigned int *p = &x;
          unsigned char *c = (unsigned char *)p;  /* bad cast: WILD */
          return *c;
        }
        """)
        res = run_cured(c)
        assert res.status == 65  # little-endian low byte

    def test_wild_out_of_bounds(self):
        assert_caught("""
        int main(void) {
          int x = 1;
          int *p = &x;
          char *c = (char *)p;   /* WILD */
          c = c + 10;
          return *c;
        }
        """, BoundsError)

    def test_wild_tag_read_pointer_from_int(self):
        # Writing an integer then reading the word as a pointer must
        # fail the tag check (Figure 10's tag invariant).
        assert_caught("""
        int main(void) {
          int *slot[1];
          int **pp = slot;
          int *bad = (int *)(char *)pp;  /* WILD alias of slot */
          *(int *)bad = 123;             /* writes an int */
          int *stored = slot[0];
          return *stored;
        }
        """, MemorySafetyError)


class TestUncuredContrast:
    def test_uncured_overflow_corrupts_silently(self):
        src = """
        int main(void) {
          int buf[2];
          int canary[1];
          int *p = buf;
          canary[0] = 7;
          p[2] = 999;            /* overruns buf into canary */
          return canary[0];
        }
        """
        raw = parse_program(src, "corrupt")
        res = run_raw(raw)
        # Uncured: the write lands in the adjacent object — silent
        # corruption, no error of any kind.
        assert res.status == 999
        cured = cure_src(src)
        with pytest.raises(BoundsError):
            run_cured(cured)

    def test_uncured_wild_deref_faults_or_garbage(self):
        src = "int main(void){ int *p = (int*)1234; return *p; }"
        with pytest.raises(SegmentationFault):
            run_raw(parse_program(src, "segv"))


class TestWildFieldAccess:
    """Regression tests: checks on field accesses through SEQ/WILD
    pointers must cover the *whole pointee* (Figure 11 checks
    ``sizeof(t)``, not the field's size) and tag-check the *accessed
    word*, not the host address."""

    def test_wild_struct_pointer_field_roundtrip(self):
        # Reading a pointer field of a WILD struct must consult the
        # tag of the field's word (offset 8), not the header's.
        c = cure_src("""
        struct node { int tag; int width; struct node *next; };
        int main(void) {
          struct node a;
          struct node b;
          a.tag = 1; a.width = 10; a.next = &b;
          b.tag = 2; b.width = 20; b.next = 0;
          char *alias = (char *)&a;          /* WILD */
          struct node *w = (struct node *)alias;
          struct node *second = w->next;     /* tagged pointer read */
          return second->width;
        }
        """)
        assert run_cured(c).status == 20

    def test_wild_null_pointer_field_reads_back(self):
        # Storing a null pointer still tags the word; reading it back
        # yields null rather than a tag error.
        c = cure_src("""
        struct cell { int v; struct cell *next; };
        int main(void) {
          struct cell c;
          c.v = 5;
          c.next = 0;
          char *alias = (char *)&c;          /* WILD */
          struct cell *w = (struct cell *)alias;
          return w->next == (struct cell *)0;
        }
        """)
        assert run_cured(c).status == 1

    def test_seq_interior_field_fully_bounded(self):
        # A SEQ pointer at the very end of its area must not be able
        # to reach fields past the area through a field offset.
        c = cure_src("""
        struct wide { int a; int b; int c2; };
        int main(void) {
          struct wide arr[2];
          struct wide *p = arr;
          p = p + 2;          /* one past the end: ok to form */
          return p->c2;        /* deref must fail entirely */
        }
        """)
        with pytest.raises(BoundsError):
            run_cured(c)
