"""Differential test: the closure-compiled engine must be
bit-identical to the tree-walking oracle.

Every workload in the suite runs under both engines, cured and raw,
and the observable machine state — exit status, stdout, deterministic
cycle count, step count — must match exactly.  This is what licenses
using the fast engine for the paper's measurements: any divergence in
charges, evaluation order or error behaviour shows up as a cycle or
output mismatch here.
"""

import pytest

from repro.bench import pristine_cure, pristine_parse
from repro.interp import Interpreter
from repro.workloads import all_workloads

#: small deterministic problem size: parity does not depend on scale,
#: and the whole suite × 2 modes × 2 engines must stay cheap.
SCALE = 2


def _signature(ip, args):
    res = ip.run(args)
    return (res.status, res.stdout, res.cost.cycles, res.steps)


@pytest.mark.parametrize("w", all_workloads(), ids=lambda w: w.name)
def test_raw_parity(w):
    prog = pristine_parse(w, SCALE)
    args = list(w.args) or None
    tree = _signature(
        Interpreter(prog, stdin=w.stdin, engine="tree"), args)
    clos = _signature(
        Interpreter(prog, stdin=w.stdin, engine="closures"), args)
    assert tree == clos, (
        f"{w.name}: raw closures diverged from tree oracle\n"
        f"  tree:     status={tree[0]} cycles={tree[2]} "
        f"steps={tree[3]}\n"
        f"  closures: status={clos[0]} cycles={clos[2]} "
        f"steps={clos[3]}")


@pytest.mark.parametrize("w", all_workloads(), ids=lambda w: w.name)
def test_cured_parity(w):
    cured = pristine_cure(w, scale=SCALE)
    args = list(w.args) or None
    tree = _signature(
        Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                    engine="tree"), args)
    clos = _signature(
        Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                    engine="closures"), args)
    assert tree == clos, (
        f"{w.name}: cured closures diverged from tree oracle\n"
        f"  tree:     status={tree[0]} cycles={tree[2]} "
        f"steps={tree[3]}\n"
        f"  closures: status={clos[0]} cycles={clos[2]} "
        f"steps={clos[3]}")


@pytest.mark.parametrize("w", all_workloads(), ids=lambda w: w.name)
def test_temporal_reuse_parity(w):
    """Temporal checking + the recycling allocator: both engines stay
    bit-identical, and a *clean* workload is unaffected by address
    reuse — it frees nothing it later touches, so recycling must not
    change its status or output (only keys and lock-table traffic)."""
    from repro.core.options import CureOptions

    cured = pristine_cure(w, options=CureOptions(
        trust_bad_casts=w.trust_bad_casts, temporal=True),
        scale=SCALE)
    args = list(w.args) or None
    tree = _signature(
        Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                    engine="tree", reuse_freed=True), args)
    clos = _signature(
        Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                    engine="closures", reuse_freed=True), args)
    assert tree == clos, (
        f"{w.name}: temporal+reuse closures diverged from tree\n"
        f"  tree:     status={tree[0]} cycles={tree[2]} "
        f"steps={tree[3]}\n"
        f"  closures: status={clos[0]} cycles={clos[2]} "
        f"steps={clos[3]}")
    # the recycling allocator is invisible to a correct program:
    # status and stdout match the never-reuse temporal run
    plain = _signature(
        Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                    engine="closures"), args)
    assert (tree[0], tree[1]) == (plain[0], plain[1]), (
        f"{w.name}: address reuse changed a clean program's "
        f"observable behaviour")
