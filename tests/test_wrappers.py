"""Tests for the library wrapper system (paper Section 4.1).

The central example is Figure 3: a user-supplied ``strchr`` wrapper
registered with ``#pragma ccuredWrapperOf`` that verifies its inputs
(``__verify_nul``), calls the underlying library function on the
stripped pointer (``__ptrof``), and rebuilds a wide pointer for the
result (``__mkptr``).
"""

import pytest

from helpers import cure_src

from repro.interp import Interpreter, run_cured
from repro.runtime.checks import BoundsError, LinkError


FIGURE3 = r'''
#include <ccured.h>
#include <string.h>

#pragma ccuredWrapperOf("strchr_wrapper", "strchr")
char *strchr_wrapper(char *str, int chr) {
  __verify_nul(str);             /* check for NUL termination */
  /* call underlying function, stripping metadata */
  char *result = strchr((char *)__ptrof(str), chr);
  /* build a wide CCured ptr for the return value */
  return (char *)__mkptr((void *)result, (void *)str);
}

int main(void) {
  char s[16];
  strcpy(s, "wrapped!");
  char *p = strchr(s, 'p');      /* goes through the wrapper */
  if (p == (char *)0) return 99;
  return (int)(p - s);
}
'''


class TestWrapperDispatch:
    def test_figure3_wrapper_runs(self):
        c = cure_src(FIGURE3, "fig3")
        res = run_cured(c)
        assert res.status == 3  # "wrapped!".index('p')

    def test_wrapper_registered(self):
        c = cure_src(FIGURE3, "fig3b")
        ip = Interpreter(c.prog, cured=c)
        assert ip.wrapper_of == {"strchr": "strchr_wrapper"}

    def test_wrapper_sees_bad_input(self):
        # The wrapper's __verify_nul rejects an unterminated string.
        src = FIGURE3.replace(
            'strcpy(s, "wrapped!");',
            'int i; for (i = 0; i < 16; i++) s[i] = (char)65;')
        c = cure_src(src, "fig3c")
        with pytest.raises(BoundsError):
            run_cured(c)

    def test_inner_call_goes_to_library(self):
        # Inside the wrapper, the call to strchr must reach the real
        # library (not recurse into the wrapper).
        c = cure_src(FIGURE3, "fig3d")
        res = run_cured(c)
        assert res.status == 3  # termination itself proves no loop

    def test_result_carries_string_bounds(self):
        src = FIGURE3.replace(
            "return (int)(p - s);",
            "p = p + 15; return *p;")
        c = cure_src(src, "fig3e")
        with pytest.raises(BoundsError):
            run_cured(c)


class TestLinkBehaviour:
    def test_undefined_external_fails_at_call(self):
        c = cure_src("""
        extern int mystery(int x);
        int main(void) { return mystery(1); }
        """)
        with pytest.raises(LinkError):
            run_cured(c)

    def test_undefined_external_unreferenced_is_fine(self):
        c = cure_src("""
        extern int mystery(int x);
        int main(void) { return 7; }
        """)
        assert run_cured(c).status == 7

    def test_user_function_shadows_builtin(self):
        # A program-local definition of a libc name wins over the
        # builtin (ordinary C linking).
        c = cure_src("""
        int abs(int x) { return 1234; }
        int main(void) { return abs(-5); }
        """)
        assert run_cured(c).status == 1234
