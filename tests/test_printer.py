"""Tests for the C pretty-printer, including re-parse round-trips."""

import pytest
from pycparser import c_parser

from repro.cil import types as T
from repro.cil.printer import exp_to_c, program_to_c, type_to_c
from repro.frontend import parse_program

ROUNDTRIP_PROGRAMS = [
    # simple arithmetic and control flow
    """
    int add(int a, int b) { return a + b; }
    int main(void) {
      int i, s = 0;
      for (i = 0; i < 4; i++) s += add(i, i);
      return s;
    }
    """,
    # structs, pointers, arrays
    """
    struct pt { int x; int y; };
    int main(void) {
      struct pt pts[3];
      struct pt *p = pts;
      int i;
      for (i = 0; i < 3; i++) { p[i].x = i; p[i].y = -i; }
      return pts[1].x;
    }
    """,
    # function pointers and casts
    """
    int twice(int v) { return v * 2; }
    int main(void) {
      int (*fp)(int) = twice;
      void *v = (void *)fp;
      int (*back)(int) = (int (*)(int))v;
      return back(21);
    }
    """,
    # strings and library calls
    r'''
    #include <string.h>
    int main(void) {
      char buf[16];
      strcpy(buf, "abc");
      return (int)strlen(buf);
    }
    ''',
]


class TestRoundTrip:
    @pytest.mark.parametrize("src", ROUNDTRIP_PROGRAMS)
    def test_printed_output_reparses(self, src):
        """The plain-mode printer emits valid C: pycparser accepts it."""
        prog = parse_program(src, "rt")
        text = program_to_c(prog, annotate_kinds=False)
        ast = c_parser.CParser().parse(text, filename="printed.c")
        assert len(ast.ext) > 0

    @pytest.mark.parametrize("src", ROUNDTRIP_PROGRAMS)
    def test_reparsed_program_behaves_identically(self, src):
        """Print → re-parse → re-lower → run gives the same result."""
        from repro.interp import run_raw
        prog1 = parse_program(src, "rt1")
        r1 = run_raw(prog1)
        text = program_to_c(parse_program(src, "rt1b"),
                            annotate_kinds=False)
        prog2 = parse_program(text, "rt2")
        r2 = run_raw(prog2)
        assert r1.status == r2.status
        assert r1.stdout == r2.stdout


class TestTypePrinting:
    def test_simple_types(self):
        assert type_to_c(T.int_t(), "x") == "int x"
        assert type_to_c(T.ptr(T.char_t()), "s") == "char *s"

    def test_pointer_to_array(self):
        t = T.ptr(T.array(T.int_t(), 4))
        assert type_to_c(t, "p") == "int (*p)[4]"

    def test_array_of_pointers(self):
        t = T.array(T.ptr(T.int_t()), 4)
        assert type_to_c(t, "a") == "int *a[4]"

    def test_function_pointer(self):
        f = T.TFun(T.int_t(), [("x", T.int_t())])
        assert type_to_c(T.ptr(f), "fp") == "int (*fp)(int x)"

    def test_function_pointer_no_params(self):
        f = T.TFun(T.void_t(), [])
        assert type_to_c(T.ptr(f), "fp") == "void (*fp)(void)"

    def test_struct_type(self):
        comp = T.CompInfo(True, "s", [T.FieldInfo("v", T.int_t())])
        assert type_to_c(T.TComp(comp), "x") == "struct s x"

    def test_varargs(self):
        f = T.TFun(T.int_t(), [("fmt", T.ptr(T.char_t()))],
                   varargs=True)
        assert "..." in type_to_c(f, "printf_like")


class TestExpressionPrinting:
    def test_string_escapes(self):
        prog = parse_program(
            r'int main(void){ char *s = "a\n\t\"b\""; '
            r'return s != (char*)0; }', "esc")
        text = program_to_c(prog)
        assert r'"a\n\t\"b\""' in text
        # and it must re-parse
        c_parser.CParser().parse(text)

    def test_negative_constants(self):
        prog = parse_program("int x = -5;", "neg")
        assert "-" in program_to_c(prog)

    def test_arrow_sugar(self):
        prog = parse_program("""
        struct s { int v; };
        int f(struct s *p) { return p->v; }
        """, "arrow")
        assert "p->v" in program_to_c(prog)

    def test_float_constants_reparse(self):
        prog = parse_program(
            "double d = 0.5; float f2 = 1.25;", "flt")
        c_parser.CParser().parse(program_to_c(prog))
