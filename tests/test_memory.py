"""Unit tests for the memory model (homes, shadow metadata, spanning)."""

import pytest

from repro.runtime.checks import SegmentationFault
from repro.runtime.memory import Memory, PtrMeta


class TestAllocation:
    def test_regions_are_disjoint(self):
        m = Memory()
        h1 = m.alloc(16, "heap")
        h2 = m.alloc(16, "stack")
        h3 = m.alloc(16, "global")
        bases = sorted([h1.base, h2.base, h3.base])
        assert len(set(bases)) == 3

    def test_homes_word_aligned(self):
        m = Memory()
        m.alloc(3, "heap")
        h = m.alloc(5, "heap")
        assert h.base % 4 == 0

    def test_gap_regions(self):
        m = Memory(gap_regions={"heap"})
        a = m.alloc(8, "heap")
        b = m.alloc(8, "heap")
        assert b.base >= a.end + 4

    def test_contiguous_packing(self):
        m = Memory(gap_regions=set())
        a = m.alloc(8, "heap")
        b = m.alloc(8, "heap")
        assert b.base == a.end

    def test_home_of_resolution(self):
        m = Memory()
        h = m.alloc(16, "heap", "blk")
        assert m.home_of(h.base) is h
        assert m.home_of(h.base + 15) is h
        assert m.home_of(h.end) is not h

    def test_free_marks_dead(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.free(h)
        assert not h.alive

    def test_stats(self):
        m = Memory()
        m.alloc(10, "heap")
        m.alloc(6, "stack")
        assert m.allocations == 2
        assert m.bytes_allocated == 16


class TestRawAccess:
    def test_roundtrip_bytes(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_raw(h.base, b"abcdefgh")
        assert m.read_raw(h.base + 2, 3) == b"cde"

    def test_unmapped_read_faults(self):
        m = Memory()
        with pytest.raises(SegmentationFault):
            m.read_raw(0xDEAD, 4)

    def test_spanning_write_contiguous(self):
        m = Memory(gap_regions=set())
        a = m.alloc(4, "stack")
        b = m.alloc(4, "stack")
        m.write_raw(a.base, b"12345678")  # spans into b
        assert bytes(b.data) == b"5678"

    def test_spanning_write_with_gap_faults(self):
        m = Memory(gap_regions={"stack"})
        a = m.alloc(4, "stack")
        m.alloc(4, "stack")
        with pytest.raises(SegmentationFault):
            m.write_raw(a.base, b"12345678")

    def test_int_roundtrip_signed(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_int(h.base, -5, 4)
        assert m.read_int(h.base, 4, True) == -5
        assert m.read_int(h.base, 4, False) == 0xFFFFFFFB

    def test_short_and_char(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_int(h.base, 0x1234, 2)
        assert m.read_int(h.base, 2, False) == 0x1234
        m.write_int(h.base, 0x9C, 1)
        assert m.read_int(h.base, 1, True) == 0x9C - 256

    def test_float_roundtrip(self):
        m = Memory()
        h = m.alloc(16, "heap")
        m.write_float(h.base, 3.25, 8)
        assert m.read_float(h.base, 8) == 3.25
        m.write_float(h.base, 1.5, 4)
        assert m.read_float(h.base, 4) == 1.5

    def test_little_endian_layout(self):
        m = Memory()
        h = m.alloc(4, "heap")
        m.write_int(h.base, 0x11223344, 4)
        assert m.read_raw(h.base, 1) == b"\x44"


class TestShadowMetadata:
    def test_pointer_meta_roundtrip(self):
        m = Memory()
        h = m.alloc(8, "heap")
        meta = PtrMeta(b=100, e=200, rtti=3)
        m.write_ptr(h.base, 0x1000, meta)
        value, got = m.read_ptr(h.base)
        assert value == 0x1000
        assert got.b == 100 and got.e == 200 and got.rtti == 3

    def test_int_write_clears_meta(self):
        """Figure 10's tag invariant: writing an integer over a stored
        pointer invalidates the pointer's metadata."""
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_ptr(h.base, 0x1000, PtrMeta(b=1, e=2))
        m.write_int(h.base, 42, 4)
        value, got = m.read_ptr(h.base)
        assert value == 42 and got is None

    def test_partial_overwrite_clears_meta(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_ptr(h.base, 0x1000, PtrMeta(b=1, e=2))
        m.write_int(h.base + 2, 7, 1)  # clobbers one byte of the word
        _, got = m.read_ptr(h.base)
        assert got is None

    def test_tag_query(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_ptr(h.base, 0x1000, PtrMeta(b=1, e=2))
        assert m.has_ptr_tag(h.base)
        assert not m.has_ptr_tag(h.base + 4)

    def test_null_meta_write_clears(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_ptr(h.base, 0x1000, PtrMeta(b=1, e=2))
        m.write_ptr(h.base, 0, None)
        _, got = m.read_ptr(h.base)
        assert got is None

    def test_free_clears_meta(self):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_ptr(h.base, 0x1000, PtrMeta(b=1, e=2))
        m.free(h)
        assert not h.meta
