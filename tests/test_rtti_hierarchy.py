"""Tests for the RTTI hierarchy structure (paper Section 3.2)."""

from repro.cil import types as T
from repro.core.rtti import RttiHierarchy


def S(name, *fields):
    return T.TComp(T.CompInfo(
        True, name, [T.FieldInfo(n, t) for n, t in fields]))


def build_shapes():
    figure = S("FigH", ("tag", T.int_t()))
    circle = S("CirH", ("tag", T.int_t()), ("r", T.int_t()))
    square = S("SqH", ("tag", T.int_t()), ("side", T.int_t()),
               ("area", T.int_t()))
    h = RttiHierarchy()
    h.build([figure, circle, square, T.int_t()])
    return h, figure, circle, square


class TestHierarchy:
    def test_void_is_node_zero(self):
        h = RttiHierarchy()
        assert h.void_id == 0
        assert h.rtti_of(T.TVoid()) == 0

    def test_everything_subtype_of_void(self):
        h, figure, circle, square = build_shapes()
        for t in (figure, circle, square):
            assert h.is_subtype(h.rtti_of(t), h.void_id)

    def test_prefix_subtyping(self):
        h, figure, circle, square = build_shapes()
        assert h.is_subtype(h.rtti_of(circle), h.rtti_of(figure))
        assert not h.is_subtype(h.rtti_of(figure), h.rtti_of(circle))

    def test_transitivity(self):
        h, figure, circle, square = build_shapes()
        # square <= circle <= figure (by prefix)
        assert h.is_subtype(h.rtti_of(square), h.rtti_of(circle))
        assert h.is_subtype(h.rtti_of(square), h.rtti_of(figure))

    def test_reflexive(self):
        h, figure, *_ = build_shapes()
        rid = h.rtti_of(figure)
        assert h.is_subtype(rid, rid)

    def test_siblings_not_related(self):
        left = S("LeftH", ("tag", T.int_t()), ("l", T.double_t()))
        right = S("RightH", ("tag", T.int_t()), ("r", T.ptr(T.int_t())))
        h = RttiHierarchy()
        h.build([left, right])
        assert not h.is_subtype(h.rtti_of(left), h.rtti_of(right))
        assert not h.is_subtype(h.rtti_of(right), h.rtti_of(left))

    def test_physically_equal_types_share_node(self):
        a = S("EqA", ("x", T.int_t()))
        b = S("EqB", ("x", T.int_t()))
        h = RttiHierarchy()
        h.build([a, b])
        assert h.rtti_of(a) == h.rtti_of(b)

    def test_has_subtypes(self):
        h, figure, circle, square = build_shapes()
        assert h.has_subtypes(figure)     # circle, square below it
        assert h.has_subtypes(T.TVoid())  # everything below void
        assert not h.has_subtypes(square)

    def test_late_registration(self):
        h, figure, *_ = build_shapes()
        new = S("NewH", ("tag", T.int_t()), ("v", T.float_t()))
        rid = h.rtti_of(new)  # not registered at build time
        assert h.is_subtype(rid, h.rtti_of(figure))

    def test_len_counts_nodes(self):
        h, *_ = build_shapes()
        assert len(h) >= 4  # void + 3 shapes (int may share/also count)
