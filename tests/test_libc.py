"""Tests for the builtin libc subset and its wrapper behaviour."""

import pytest

from helpers import cure_src, run_both

from repro.interp import run_cured
from repro.runtime.checks import BoundsError, ProgramAbort


class TestStrings:
    def test_strlen_strcpy_strcat(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) {
          char buf[32];
          strcpy(buf, "ab");
          strcat(buf, "cde");
          return (int)strlen(buf);
        }
        ''')
        assert rc.status == 5

    def test_strncpy_pads_and_limits(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) {
          char buf[8];
          strncpy(buf, "abcdef", 3);
          buf[3] = 0;
          return (int)strlen(buf);
        }
        ''')
        assert rc.status == 3

    def test_strcmp_orders(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) {
          int a = strcmp("abc", "abd");
          int b = strcmp("abc", "abc");
          int c = strcmp("abd", "abc");
          return (a < 0) * 100 + (b == 0) * 10 + (c > 0);
        }
        ''')
        assert rc.status == 111

    def test_strncmp(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) { return strncmp("abcX", "abcY", 3) == 0; }
        ''')
        assert rc.status == 1

    def test_strchr_returns_interior_pointer(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) {
          char s[16];
          strcpy(s, "hello");
          char *p = strchr(s, 'l');
          if (p == (char*)0) return 99;
          return (int)(p - s);
        }
        ''')
        assert rc.status == 2

    def test_strchr_interior_pointer_keeps_bounds(self):
        # Figure 3's wrapper: the result is __mkptr(result, str), so
        # arithmetic on it stays checked against the *string's* home.
        c = cure_src(r'''
        #include <string.h>
        int main(void) {
          char s[8];
          strcpy(s, "abcdef");
          char *p = strchr(s, 'c');
          p = p + 10;      /* out of bounds of s */
          return *p;
        }
        ''')
        with pytest.raises(BoundsError):
            run_cured(c)

    def test_strchr_not_found(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) { return strchr("abc", 'z') == (char*)0; }
        ''')
        assert rc.status == 1

    def test_strrchr_and_strstr(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) {
          char *s = "abcabc";
          return (int)(strrchr(s, 'b') - s) * 10
               + (int)(strstr(s, "cab") - s);
        }
        ''')
        assert rc.status == 42

    def test_strdup_makes_heap_copy(self):
        rc, _ = run_both(r'''
        #include <string.h>
        #include <stdlib.h>
        int main(void) {
          char orig[8];
          strcpy(orig, "dup");
          char *copy = strdup(orig);
          orig[0] = 'X';
          int same = strcmp(copy, "dup") == 0;
          free(copy);
          return same;
        }
        ''')
        assert rc.status == 1


class TestMemOps:
    def test_memset_memcmp(self):
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) {
          char a[8];
          char b[8];
          memset(a, 7, 8);
          memset(b, 7, 8);
          return memcmp(a, b, 8) == 0;
        }
        ''')
        assert rc.status == 1

    def test_memcpy_copies_pointers_with_metadata(self):
        # memcpy must move shadow metadata with the bytes, or the
        # copied SEQ pointer would lose its bounds.
        rc, _ = run_both(r'''
        #include <string.h>
        int main(void) {
          int arr[4];
          int *src[1];
          int *dst[1];
          arr[2] = 55;
          src[0] = arr;
          memcpy((void*)dst, (void*)src, sizeof(src));
          int *p = dst[0];
          return p[2];
        }
        ''')
        assert rc.status == 55


class TestStdlib:
    def test_calloc_zeroes(self):
        rc, _ = run_both(r'''
        #include <stdlib.h>
        int main(void) {
          int *p = (int *)calloc(4, sizeof(int));
          return p[0] + p[3];
        }
        ''')
        assert rc.status == 0

    def test_realloc_preserves_prefix(self):
        rc, _ = run_both(r'''
        #include <stdlib.h>
        int main(void) {
          int *p = (int *)malloc(2 * sizeof(int));
          p[0] = 11; p[1] = 22;
          p = (int *)realloc(p, 4 * sizeof(int));
          p[3] = 33;
          return p[0] + p[1] + p[3];
        }
        ''')
        assert rc.status == 66

    def test_atoi(self):
        rc, _ = run_both(r'''
        #include <stdlib.h>
        int main(void) {
          return atoi("  -42xyz") + atoi("100") + atoi("junk");
        }
        ''')
        assert rc.status == 58

    def test_abs(self):
        rc, _ = run_both(
            "#include <stdlib.h>\n"
            "int main(void){ return abs(-7) + abs(7); }")
        assert rc.status == 14

    def test_rand_deterministic(self):
        c1 = cure_src(r'''
        #include <stdlib.h>
        int main(void) { srand(7); return rand() % 100; }
        ''', "r1")
        c2 = cure_src(r'''
        #include <stdlib.h>
        int main(void) { srand(7); return rand() % 100; }
        ''', "r2")
        assert run_cured(c1).status == run_cured(c2).status

    def test_qsort_ints(self):
        rc, _ = run_both(r'''
        #include <stdlib.h>
        int cmp(const void *a, const void *b) {
          const int *x = (const int *)a;
          const int *y = (const int *)b;
          return *x - *y;
        }
        int main(void) {
          int v[5] = { 9, 1, 8, 2, 7 };
          qsort((void*)v, 5, sizeof(int), cmp);
          return v[0] * 1000 + v[1] * 100 + v[2] * 10 + v[4] % 10;
        }
        ''')
        assert rc.status == 1000 + 200 + 70 + 9

    def test_assert_macro(self):
        c = cure_src(r'''
        #include <assert.h>
        int main(void) { int x = 1; assert(x == 2); return 0; }
        ''')
        with pytest.raises(ProgramAbort):
            run_cured(c)

    def test_assert_passing(self):
        rc, _ = run_both(r'''
        #include <assert.h>
        int main(void) { assert(1 + 1 == 2); return 5; }
        ''')
        assert rc.status == 5


class TestCcuredHelpers:
    def test_ccured_length(self):
        c = cure_src(r'''
        #include <ccured.h>
        int main(void) {
          char buf[24];
          return (int)__ccured_length(buf);
        }
        ''')
        assert run_cured(c).status == 24

    def test_ptrof_mkptr_roundtrip(self):
        c = cure_src(r'''
        #include <ccured.h>
        #include <string.h>
        int main(void) {
          char s[8];
          strcpy(s, "abc");
          char *lib = (char *)__ptrof(s);      /* strip metadata */
          char *back = (char *)__mkptr(lib, s); /* rebuild */
          return (int)strlen(back);
        }
        ''')
        assert run_cured(c).status == 3

    def test_verify_size_check(self):
        c = cure_src(r'''
        #include <ccured.h>
        int main(void) {
          char buf[4];
          __verify_size(buf, 16);
          return 0;
        }
        ''')
        with pytest.raises(BoundsError):
            run_cured(c)
