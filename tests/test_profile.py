"""The phase profiler: deterministic per-phase counts, sharded ==
serial byte-identity, and the ``repro profile`` CLI."""

import json

from repro.cli import main
from repro.obs import stable_dumps
from repro.obs.profile import (PROFILE_SCHEMA, ProfileReport,
                               collect_profile, fold_spans,
                               phase_key, profile_workload,
                               render_profile)
from repro.obs.tracer import SpanRecord
from repro.workloads import all_workloads, get

SOME = sorted(all_workloads(), key=lambda w: w.name)[:3]


class TestFolding:
    def test_phase_key_splits_exec_cache_optimize(self):
        assert phase_key(SpanRecord(
            "exec", 0, 0, 0, {"engine": "tree", "mode": "raw"})) \
            == "exec:tree:raw"
        assert phase_key(SpanRecord(
            "cache", 0, 0, 0, {"op": "load", "event": "hit"})) \
            == "cache:load"
        assert phase_key(SpanRecord(
            "optimize", 0, 0, 0, {"level": "flow"})) \
            == "optimize:flow"
        assert phase_key(SpanRecord("solve", 0, 0, 0, {})) == "solve"

    def test_fold_counts_and_seconds(self):
        stats = fold_spans([
            SpanRecord("parse", 0, 0.0, 1.0, {}),
            SpanRecord("parse", 0, 2.0, 0.5, {}),
            SpanRecord("solve", 1, 0.1, 0.2, {}),
        ])
        assert stats["parse"].count == 2
        assert abs(stats["parse"].seconds - 1.5) < 1e-9
        assert stats["solve"].count == 1

    def test_cache_phases_excluded_from_gated_serialization(self):
        report = ProfileReport(engine="closures", optimize="flow",
                               scale=None)
        report.workloads["w"] = fold_spans([
            SpanRecord("parse", 0, 0.0, 1.0, {}),
            SpanRecord("cache", 1, 0.0, 0.1, {"op": "load"}),
        ])
        gated = report.to_json()
        assert "cache:load" not in gated["workloads"]["w"]
        assert "cache:load" not in gated["totals"]
        timed = report.to_json(include_timing=True)
        assert "cache:load" in timed["workloads"]["w"]
        assert "seconds" in timed["workloads"]["w"]["parse"]
        assert "seconds" not in gated["workloads"]["w"]["parse"]


class TestCollection:
    def test_fresh_pipeline_span_counts(self):
        w = get("olden_power")
        records = profile_workload(w)
        stats = fold_spans(records)
        # one full pipeline: every phase ran exactly once
        for phase in ("parse", "preprocess", "cure", "constraints",
                      "solve", "split", "instrument", "dataflow",
                      "exec:closures:raw", "exec:closures:cured"):
            assert stats[phase].count == 1, phase

    def test_collect_profile_two_runs_byte_identical(self):
        a = collect_profile(SOME)
        b = collect_profile(SOME)
        assert stable_dumps(a.to_json()) == stable_dumps(b.to_json())

    def test_collect_profile_sharded_byte_identical(self):
        serial = collect_profile(SOME, jobs=1)
        pooled = collect_profile(SOME, jobs=2)
        assert stable_dumps(serial.to_json()) \
            == stable_dumps(pooled.to_json())

    def test_collect_profile_trace_sink_and_progress(self):
        sink: list = []
        seen: list = []
        collect_profile(SOME[:2], trace=sink,
                        progress=seen.append)
        assert {r.name for r in sink} >= {"workload", "parse",
                                          "cure"}
        assert len(seen) == 2

    def test_render_profile_counts_only_by_default(self):
        report = collect_profile(SOME[:1])
        text = render_profile(report)
        assert "count" in text and "wall" not in text
        timed = render_profile(report, include_timing=True)
        assert "wall" in timed


class TestProfileCLI:
    def test_json_deterministic_across_runs(self, tmp_path, capsys):
        names = ",".join(w.name for w in SOME[:2])
        paths = [str(tmp_path / "a.json"), str(tmp_path / "b.json")]
        for p in paths:
            assert main(["profile", "--workload", names,
                         "--json", p, "--quiet"]) == 0
        capsys.readouterr()
        a, b = (open(p).read() for p in paths)
        assert a == b
        assert json.loads(a)["schema"] == PROFILE_SCHEMA

    def test_sharded_cli_matches_serial(self, tmp_path, capsys):
        names = ",".join(w.name for w in SOME[:2])
        serial = str(tmp_path / "serial.json")
        pooled = str(tmp_path / "pooled.json")
        assert main(["profile", "--workload", names,
                     "--json", serial, "--quiet"]) == 0
        assert main(["profile", "--workload", names, "--jobs", "2",
                     "--json", pooled, "--quiet"]) == 0
        capsys.readouterr()
        assert open(serial).read() == open(pooled).read()

    def test_table_output_and_timing_flag(self, capsys):
        assert main(["profile", "--workload", "olden_power"]) == 0
        out = capsys.readouterr().out
        assert "exec:closures:cured" in out
        assert main(["profile", "--workload", "olden_power",
                     "--timing"]) == 0
        assert "wall" in capsys.readouterr().out

    def test_trace_flag_writes_chrome_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["profile", "--workload", "olden_power",
                     "--json", "-", "--trace", str(trace)]) == 0
        capsys.readouterr()
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e.get("ph") == "X"}
        assert "workload" in names and "parse" in names

    def test_unknown_and_missing_selection(self, capsys):
        assert main(["profile", "--workload", "no_such"]) == 2
        assert main(["profile"]) == 2
