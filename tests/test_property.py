"""Property-based tests (hypothesis) on the core invariants.

Targets:

* physical subtyping is a preorder, ``void`` is its top, and equality
  is a congruence of the flattening;
* the memory model round-trips arbitrary values and keeps the shadow
  metadata invariant (Figure 10's tag discipline);
* the solver is monotone: adding arithmetic can never turn a WILD
  pointer SAFE, and solving is deterministic;
* randomly generated straight-line programs behave identically cured
  and raw (differential testing of the instrumentation);
* the preprocessor's conditional evaluator agrees with Python on a
  safe expression subset.
"""

import struct

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cil import types as T
from repro.core import cure
from repro.core.physical import (flatten, physical_equal,
                                 physical_subtype)
from repro.cpp import preprocess
from repro.frontend import parse_program
from repro.interp import run_cured, run_raw
from repro.runtime.memory import Memory, PtrMeta

# ---------------------------------------------------------------------------
# type strategies
# ---------------------------------------------------------------------------

scalar_types = st.sampled_from([
    T.TInt(T.IKind.CHAR), T.TInt(T.IKind.SHORT), T.TInt(T.IKind.INT),
    T.TInt(T.IKind.UINT), T.TFloat(T.FKind.DOUBLE),
    T.TFloat(T.FKind.FLOAT),
])


@st.composite
def c_types(draw, depth=2):
    if depth == 0:
        return draw(scalar_types)
    kind = draw(st.integers(0, 3))
    if kind == 0:
        return draw(scalar_types)
    if kind == 1:
        return T.TPtr(draw(c_types(depth=depth - 1)))
    if kind == 2:
        return T.TArray(draw(c_types(depth=depth - 1)),
                        draw(st.integers(1, 4)))
    fields = draw(st.lists(c_types(depth=depth - 1), min_size=1,
                           max_size=3))
    comp = T.CompInfo(True, f"h{draw(st.integers(0, 10**9))}",
                      [T.FieldInfo(f"f{i}", t)
                       for i, t in enumerate(fields)])
    return T.TComp(comp)


class TestPhysicalProperties:
    @given(c_types())
    @settings(max_examples=60, deadline=None)
    def test_equality_reflexive(self, t):
        assert physical_equal(t, t)

    @given(c_types())
    @settings(max_examples=60, deadline=None)
    def test_subtype_reflexive_and_void_top(self, t):
        assert physical_subtype(t, t)
        assert physical_subtype(t, T.TVoid())

    @given(c_types(), c_types())
    @settings(max_examples=60, deadline=None)
    def test_equality_symmetric(self, a, b):
        assert physical_equal(a, b) == physical_equal(b, a)

    @given(c_types(), c_types())
    @settings(max_examples=60, deadline=None)
    def test_mutual_subtypes_are_equal(self, a, b):
        if physical_subtype(a, b) and physical_subtype(b, a):
            assert physical_equal(a, b)

    @given(c_types(), st.integers(1, 3))
    @settings(max_examples=40, deadline=None)
    def test_array_of_one_identity(self, t, n):
        # t[1] = t; and flattening an array concatenates n copies
        assert physical_equal(t, T.TArray(t, 1))
        atoms_n = list(flatten(T.TArray(t, n)))
        atoms_1 = list(flatten(t))
        assert len(atoms_n) == n * len(atoms_1)

    @given(c_types())
    @settings(max_examples=40, deadline=None)
    def test_wrapping_struct_is_equal(self, t):
        comp = T.CompInfo(True, "w", [T.FieldInfo("only", t)])
        assert physical_equal(T.TComp(comp), t)

    @given(c_types())
    @settings(max_examples=40, deadline=None)
    def test_extension_is_subtype(self, t):
        ext = T.CompInfo(True, "ext", [
            T.FieldInfo("head", t), T.FieldInfo("tail", T.int_t())])
        assert physical_subtype(T.TComp(ext), t)


class TestMemoryProperties:
    @given(st.integers(0, 0xFFFFFFFF), st.sampled_from([1, 2, 4, 8]))
    @settings(max_examples=80, deadline=None)
    def test_int_roundtrip(self, value, size):
        m = Memory()
        h = m.alloc(8, "heap")
        v = value & ((1 << (8 * size)) - 1)
        m.write_int(h.base, v, size)
        assert m.read_int(h.base, size, False) == v

    @given(st.floats(allow_nan=False, allow_infinity=False,
                     width=32))
    @settings(max_examples=60, deadline=None)
    def test_float_roundtrip(self, value):
        m = Memory()
        h = m.alloc(8, "heap")
        m.write_float(h.base, value, 4)
        expected = struct.unpack("<f", struct.pack("<f", value))[0]
        assert m.read_float(h.base, 4) == expected

    @given(st.binary(min_size=1, max_size=64))
    @settings(max_examples=60, deadline=None)
    def test_bytes_roundtrip(self, data):
        m = Memory()
        h = m.alloc(len(data), "heap")
        m.write_raw(h.base, data)
        assert m.read_raw(h.base, len(data)) == data

    @given(st.integers(0, 3), st.integers(0, 0xFFFFFFFF))
    @settings(max_examples=60, deadline=None)
    def test_tag_invariant(self, word, value):
        """Figure 10: the tag of a word is set iff the last store there
        was a valid pointer."""
        m = Memory()
        h = m.alloc(16, "heap")
        addr = h.base + 4 * word
        m.write_ptr(addr, 0x1000, PtrMeta(b=1, e=2))
        assert m.has_ptr_tag(addr)
        m.write_int(addr, value, 4)
        assert not m.has_ptr_tag(addr)


class TestDifferentialExecution:
    """Random straight-line array programs: cured and raw must agree
    on all in-bounds behaviour."""

    @given(st.lists(st.tuples(st.integers(0, 7),
                              st.integers(-100, 100)),
                    min_size=1, max_size=12),
           st.integers(1, 5))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_array_writes_agree(self, ops, stride):
        body = "\n".join(
            f"  a[{idx}] = a[{idx}] * {stride} + ({val});"
            for idx, val in ops)
        src = ("int main(void) {\n  int a[8];\n  int i;\n"
               "  int *p = a;\n"
               "  for (i = 0; i < 8; i++) p[i] = i;\n"
               f"{body}\n"
               "  int s = 0;\n"
               "  for (i = 0; i < 8; i++) s += p[i];\n"
               "  return s & 0xFF;\n}\n")
        cured = cure(src, name="diff")
        rc = run_cured(cured)
        rr = run_raw(parse_program(src, "diff_raw"))
        assert rc.status == rr.status

    @given(st.lists(st.integers(-1000, 1000), min_size=1,
                    max_size=8))
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_arith_expressions_agree(self, values):
        exprs = " + ".join(f"({v})" for v in values)
        src = (f"int main(void) {{ int x = {exprs}; "
               "return x & 0x7F; }")
        cured = cure(src, name="arith")
        rc = run_cured(cured)
        rr = run_raw(parse_program(src, "arith_raw"))
        assert rc.status == rr.status


class TestPreprocessorProperties:
    @given(st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=50, deadline=None)
    def test_if_arithmetic_matches_python(self, a, b):
        cond = f"({a}) + ({b}) * 2 > ({a}) - ({b})"
        out = preprocess(f"#if {cond}\nint yes;\n#endif\n")
        expected = a + b * 2 > a - b
        assert ("int yes;" in out) == expected

    @given(st.text(alphabet="abcdefgh_123 ", min_size=0,
                   max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_plain_lines_pass_through(self, text):
        line = text.replace("\n", " ")
        out = preprocess(line + "\n")
        assert line.rstrip() in out or line.strip() == ""


class TestSolverProperties:
    @given(st.integers(2, 6), st.integers(1, 4))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_generated_hierarchies_never_wild(self, n_types, rounds):
        from repro.workloads import ijpeg_gen
        src = ijpeg_gen.generate(n_types=n_types, n_objects=4,
                                 n_rounds=rounds)
        cured = cure(parse_program(src, "gen"), name="gen")
        assert cured.kind_percentages()["wild"] == 0.0

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_solver_deterministic(self, salt):
        src = (f"int main(void) {{ int a[{4 + salt % 4}]; "
               "int *p = a; p = p + 1; return *p; }")
        k1 = _kinds(src)
        k2 = _kinds(src)
        assert k1 == k2


def _kinds(src: str):
    cured = cure(src, name="det")
    return tuple(sorted(
        (n.where, n.kind.name)
        for n in cured.analysis.decl_nodes))
