"""Tests for the compatible (SPLIT) metadata representation
(paper Section 4.2): the C()/Meta() constructors of Figure 6, the
boundary representation of Figure 7, the SPLIT inference, and the
library-compatibility behaviour it enables.
"""

import pytest

from helpers import cure_src

from repro.cil import types as T
from repro.core import (CompatibilityError, CureOptions, PointerKind,
                        cure, meta_type, needs_metadata,
                        rep_split_boundary, rep_type)
from repro.core.qualifiers import Node
from repro.interp import run_cured
from repro.runtime import checks as rc


def seq_ptr(base):
    p = T.TPtr(base)
    n = Node(p, "test")
    n.arith = True
    n.kind = PointerKind.SEQ
    n.solved = True
    p.node = n
    return p


def safe_ptr(base):
    p = T.TPtr(base)
    n = Node(p, "test")
    n.kind = PointerKind.SAFE
    n.solved = True
    p.node = n
    return p


class TestMetaConstructors:
    def test_meta_of_int_is_void(self):
        assert meta_type(T.int_t()) is None

    def test_meta_of_safe_ptr_to_int_is_void(self):
        # SAFE pointer to metadata-free base: no metadata at all.
        assert meta_type(safe_ptr(T.int_t())) is None

    def test_meta_of_seq_ptr_has_b_e(self):
        mt = meta_type(seq_ptr(T.char_t()))
        assert mt is not None
        names = [f.name for f in T.unroll(mt).comp.fields]
        assert names == ["b", "e"]

    def test_meta_of_seq_ptr_to_seq_ptr_has_m(self):
        inner = seq_ptr(T.char_t())
        outer = seq_ptr(inner)
        mt = meta_type(outer)
        names = [f.name for f in T.unroll(mt).comp.fields]
        assert names == ["b", "e", "m"]

    def test_meta_of_safe_ptr_to_seq_base_has_only_m(self):
        inner = seq_ptr(T.char_t())
        outer = safe_ptr(inner)
        mt = meta_type(outer)
        names = [f.name for f in T.unroll(mt).comp.fields]
        assert names == ["m"]

    def test_hostent_shape(self):
        # struct hostent { char *h_name; char **h_aliases;
        #                  int h_addrtype; } with SEQ strings: the
        # metadata struct mirrors the pointer fields and drops the int
        # (Figures 4/5/6 of the paper).
        h_name = seq_ptr(T.char_t())
        h_aliases = seq_ptr(seq_ptr(T.char_t()))
        hostent = T.TComp(T.CompInfo(True, "hostent", [
            T.FieldInfo("h_name", h_name),
            T.FieldInfo("h_aliases", h_aliases),
            T.FieldInfo("h_addrtype", T.int_t()),
        ]))
        mt = meta_type(hostent)
        names = [f.name for f in T.unroll(mt).comp.fields]
        assert names == ["h_name", "h_aliases"]

    def test_struct_without_pointers_has_void_meta(self):
        s = T.TComp(T.CompInfo(True, "plain", [
            T.FieldInfo("a", T.int_t()),
            T.FieldInfo("b", T.double_t())]))
        assert meta_type(s) is None

    def test_needs_metadata(self):
        assert needs_metadata(seq_ptr(T.int_t()))
        assert not needs_metadata(safe_ptr(T.int_t()))
        assert needs_metadata(safe_ptr(seq_ptr(T.int_t())))

    def test_recursive_struct_meta_terminates(self):
        c = T.CompInfo(True, "list")
        tc = T.TComp(c)
        nxt = safe_ptr(tc)
        c.set_fields([T.FieldInfo("next", nxt),
                      T.FieldInfo("v", T.int_t())])
        # must not recurse forever
        needs_metadata(tc)
        meta_type(tc)

    def test_boundary_rep_fig7(self):
        # NOSPLIT SEQ pointer to a SPLIT type: {p, b, e, m}.
        inner = seq_ptr(T.char_t())
        hostent = T.TComp(T.CompInfo(True, "he2", [
            T.FieldInfo("h_name", inner)]))
        outer = seq_ptr(hostent)
        rep = rep_split_boundary(outer)
        names = [f.name for f in T.unroll(rep).comp.fields]
        assert names == ["p", "b", "e", "m"]

    def test_rep_type_fig1(self):
        # Rep(t * SEQ) = struct { p, b, e }
        rep = rep_type(seq_ptr(T.int_t()))
        names = [f.name for f in T.unroll(rep).comp.fields]
        assert names == ["p", "b", "e"]
        rep = rep_type(safe_ptr(T.int_t()))
        assert [f.name for f in T.unroll(rep).comp.fields] == ["p"]


GETHOST_SRC = """
#include <stdlib.h>
#include <string.h>
struct hostent { char *h_name; char **h_aliases; int h_addrtype; };
extern struct hostent *gethostbyname(const char *name);
int main(void) {
  struct hostent *he = gethostbyname("example.org");
  if (he == (struct hostent *)0) return 1;
  char *first = he->h_aliases[0];
  int n = (int)strlen(he->h_name);
  /* force SEQ on the strings via arithmetic */
  char *p = he->h_name;
  p = p + 1;
  return n + (int)strlen(first) + *p;
}
"""


class TestSplitInference:
    def test_all_split_marks_everything(self):
        c = cure_src("""
        int main(void) { int a[3]; int *p = a; return p[1]; }
        """, all_split=True)
        assert c.split_result.split_fraction == 1.0

    def test_default_no_split_without_interfaces(self):
        c = cure_src("""
        int main(void) { int a[3]; int *p = a; return p[1]; }
        """)
        assert c.split_result.split_nodes == 0

    def test_interface_pointer_becomes_split(self):
        c = cure(GETHOST_SRC, name="gethost")
        # he crosses the library boundary and its base type carries
        # metadata (SEQ strings), so the inference splits it.
        assert c.split_result.split_nodes > 0

    def test_split_stays_local_to_interface(self):
        # Splitting spreads only through data reachable from the
        # library interface; unrelated pointers stay NOSPLIT.  (That
        # locality is why the paper measures just 6% split pointers in
        # bind and <1% in OpenSSH.)
        src = GETHOST_SRC.replace(
            "int main(void) {",
            "int unrelated(void) { int x[2]; int *q = x; q[1] = 3;"
            " return q[1]; }\n"
            "int main(void) {")
        c = cure(src, name="gethost2")
        assert 0.0 < c.split_result.split_fraction < 1.0
        from repro.cil import types as T
        fd = c.prog.function("unrelated")
        q = next(v for v in fd.locals if v.name == "q")
        assert not T.unroll(q.type).node.split

    def test_pragma_split_root(self):
        src = """
        #pragma ccuredSplit("h1")
        struct wrap { int *inner; };
        int main(void) {
          int x = 2;
          struct wrap w;
          w.inner = &x;
          struct wrap *h1 = &w;
          return *h1->inner;
        }
        """
        c = cure(src, name="pragma_split")
        assert any(n.split for n in c.analysis.decl_nodes)


class TestLibraryCompatibility:
    def test_gethostbyname_runs_with_split(self):
        c = cure(GETHOST_SRC, name="gethost3")
        res = run_cured(c)
        assert res.status != 1  # resolved and read the strings

    def test_wild_pointer_to_library_rejected(self):
        src = """
        extern int sendmsg(int s, void *msg, int flags);
        struct msg { char *base; int len; };
        int main(void) {
          struct msg m;
          char payload[4];
          m.base = payload;
          char *evil = (char *)&m;   /* bad cast: m WILD */
          sendmsg(0, (void *)&m, 0);
          return evil != (char *)0;
        }
        """
        c = cure(src, name="wild_lib")
        with pytest.raises(rc.CompatibilityError):
            run_cured(c)

    def test_metadata_free_args_always_fine(self):
        src = """
        extern int recvmsg(int s, void *buf, int n);
        int main(void) {
          char buf[64];
          return recvmsg(0, (void *)buf, 32) > 0 ? 0 : 1;
        }
        """
        c = cure(src, name="recv")
        assert run_cured(c).status == 0


class TestSplitCosts:
    def test_all_split_costs_more(self):
        src = """
        struct cell { int *p; };
        int main(void) {
          int x = 1;
          struct cell c;
          c.p = &x;
          int i, s = 0;
          int arr[16];
          int *q = arr;
          for (i = 0; i < 16; i++) q[i] = i;
          for (i = 0; i < 16; i++) s += q[i] + *c.p;
          return s;
        }
        """
        plain = run_cured(cure_src(src, "plain"))
        split = run_cured(cure_src(src, "split", all_split=True))
        assert split.status == plain.status
        assert split.cycles >= plain.cycles
