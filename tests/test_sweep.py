"""Sharded sweeps: byte-identity with the serial path, under a real
two-worker process pool.

Every assertion here compares serialized artifacts with ``==`` on the
full text — the same check CI's determinism step performs with
``cmp`` — because the sweep's contract is not "equivalent results"
but "the same bytes".
"""

import json

import pytest

from repro.cli import main
from repro.obs.serialize import stable_dumps
from repro.sweep import (resolve_jobs, run_sharded, run_sweep,
                         sharded_analyze, sharded_campaign,
                         sharded_lint, sharded_lintval,
                         sharded_metrics)
from repro.workloads import all_workloads, get

SOME = sorted(all_workloads(), key=lambda w: w.name)[:4]


# -- resolve_jobs ------------------------------------------------------------


def test_resolve_jobs_values():
    import os
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs("5") == 5
    cores = os.cpu_count() or 1
    assert resolve_jobs("auto") == cores
    assert resolve_jobs(0) == cores
    assert resolve_jobs(-2) == cores


def test_run_sharded_preserves_task_order():
    tasks = [("analyze", {"name": w.name, "scale": None})
             for w in SOME]
    serial = run_sharded(tasks, 1)
    pooled = run_sharded(tasks, 2)
    assert [r["program"] for r in pooled] \
        == [r["program"] for r in serial] \
        == [w.name for w in SOME]


def test_run_sharded_propagates_worker_errors():
    with pytest.raises(KeyError):
        run_sharded([("analyze", {"name": "no-such", "scale": None}),
                     ("analyze", {"name": SOME[0].name,
                                  "scale": None})], 2)


# -- per-driver byte-identity (serial vs jobs=2) -----------------------------


def test_sharded_metrics_byte_identical():
    from repro.obs.metrics import collect_metrics
    serial = stable_dumps(collect_metrics(SOME).to_json())
    pooled = stable_dumps(sharded_metrics(SOME, jobs=2).to_json())
    assert pooled == serial


def test_sharded_lint_byte_identical():
    from repro.analysis import lint_workload, reports_json
    serial = reports_json([lint_workload(w) for w in SOME])
    pooled = reports_json(sharded_lint(SOME, jobs=2))
    assert pooled == serial


def test_sharded_campaign_byte_identical():
    from repro.faults.campaign import run_campaign
    from repro.faults.report import report_to_json
    names = ["olden_power", "ptrdist_anagram"]
    serial = report_to_json(run_campaign(
        11, "smoke", workloads=names, optimize="local"))
    pooled = report_to_json(sharded_campaign(
        11, "smoke", workloads=names, optimize="local", jobs=2))
    assert pooled == serial


def test_sharded_campaign_rejects_unknown_selection():
    with pytest.raises(KeyError):
        sharded_campaign(1, "no-such-campaign", jobs=2)
    with pytest.raises(KeyError):
        sharded_campaign(1, "smoke", classes=["no-such-class"],
                         jobs=2)
    with pytest.raises(KeyError):
        sharded_campaign(1, "smoke", workloads=["no-such-workload"],
                         jobs=2)


def test_sharded_analyze_byte_identical():
    from repro.analysis import analyze_workload
    serial = json.dumps([analyze_workload(w) for w in SOME],
                        indent=2, sort_keys=True)
    pooled = json.dumps(sharded_analyze(SOME, jobs=2),
                        indent=2, sort_keys=True)
    assert pooled == serial


def test_sharded_lintval_byte_identical():
    from repro.faults.lintval import run_lint_validation
    ws = [get("olden_power"), get("ftpd")]
    cs = ["null-deref", "double-free"]
    serial = run_lint_validation(3, workloads=ws, classes=cs).dumps()
    pooled = sharded_lintval(3, workloads=ws, classes=cs,
                             jobs=2).dumps()
    assert pooled == serial


# -- the matrix driver -------------------------------------------------------


def test_run_sweep_writes_deterministic_artifacts(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    for out, jobs in ((a, 1), (b, 2)):
        summary = run_sweep(targets=("lint", "campaign"), jobs=jobs,
                            out_dir=str(out))
        assert summary.ok
        assert len(summary.artifacts) == 2
    for name in ("lint-flow.json", "faults-smoke-flow.json"):
        assert (a / name).read_bytes() == (b / name).read_bytes()


def test_run_sweep_rejects_unknown_target():
    with pytest.raises(KeyError):
        run_sweep(targets=("no-such",), jobs=1)


# -- CLI ---------------------------------------------------------------------


def test_cli_metrics_jobs_byte_identical(tmp_path, capsys):
    serial = tmp_path / "serial.json"
    pooled = tmp_path / "pooled.json"
    sel = "olden_power,ptrdist_anagram"
    assert main(["metrics", "--workload", sel, "--quiet",
                 "--json", str(serial)]) == 0
    assert main(["metrics", "--workload", sel, "--quiet",
                 "--jobs", "2", "--json", str(pooled)]) == 0
    capsys.readouterr()
    assert pooled.read_bytes() == serial.read_bytes()


def test_cli_rejects_invalid_jobs(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["metrics", "--workload", "olden_power",
              "--jobs", "nope"])
    assert exc.value.code == 2
    assert "invalid --jobs" in capsys.readouterr().err


def test_cli_sweep_and_cache_stats(tmp_path, capsys):
    out = tmp_path / "artifacts"
    assert main(["sweep", "--targets", "lint", "--jobs", "2",
                 "--quiet", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "lint-flow" in text
    assert (out / "lint-flow.json").exists()
    assert main(["cache", "stats"]) == 0
    assert "cure cache at" in capsys.readouterr().out
    assert main(["cache", "stats", "--json", "-"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["enabled"] in (True, False)
    assert stats["entries"] >= 0
