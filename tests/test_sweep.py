"""Sharded sweeps: byte-identity with the serial path, under a real
two-worker process pool.

Every assertion here compares serialized artifacts with ``==`` on the
full text — the same check CI's determinism step performs with
``cmp`` — because the sweep's contract is not "equivalent results"
but "the same bytes".
"""

import json

import pytest

from repro.cli import main
from repro.obs.serialize import stable_dumps
from repro.sweep import (resolve_jobs, run_sharded, run_sweep,
                         sharded_analyze, sharded_campaign,
                         sharded_lint, sharded_lintval,
                         sharded_metrics)
from repro.workloads import all_workloads, get

SOME = sorted(all_workloads(), key=lambda w: w.name)[:4]


# -- resolve_jobs ------------------------------------------------------------


def test_resolve_jobs_values():
    import os
    assert resolve_jobs(None) == 1
    assert resolve_jobs(1) == 1
    assert resolve_jobs(3) == 3
    assert resolve_jobs("5") == 5
    cores = os.cpu_count() or 1
    assert resolve_jobs("auto") == cores
    assert resolve_jobs(0) == cores
    assert resolve_jobs(-2) == cores


def test_run_sharded_preserves_task_order():
    tasks = [("analyze", {"name": w.name, "scale": None})
             for w in SOME]
    serial = run_sharded(tasks, 1)
    pooled = run_sharded(tasks, 2)
    assert [r["program"] for r in pooled] \
        == [r["program"] for r in serial] \
        == [w.name for w in SOME]


def test_run_sharded_propagates_worker_errors():
    with pytest.raises(KeyError):
        run_sharded([("analyze", {"name": "no-such", "scale": None}),
                     ("analyze", {"name": SOME[0].name,
                                  "scale": None})], 2)


# -- per-driver byte-identity (serial vs jobs=2) -----------------------------


def test_sharded_metrics_byte_identical():
    from repro.obs.metrics import collect_metrics
    serial = stable_dumps(collect_metrics(SOME).to_json())
    pooled = stable_dumps(sharded_metrics(SOME, jobs=2).to_json())
    assert pooled == serial


def test_sharded_lint_byte_identical():
    from repro.analysis import lint_workload, reports_json
    serial = reports_json([lint_workload(w) for w in SOME])
    pooled = reports_json(sharded_lint(SOME, jobs=2))
    assert pooled == serial


def test_sharded_campaign_byte_identical():
    from repro.faults.campaign import run_campaign
    from repro.faults.report import report_to_json
    names = ["olden_power", "ptrdist_anagram"]
    serial = report_to_json(run_campaign(
        11, "smoke", workloads=names, optimize="local"))
    pooled = report_to_json(sharded_campaign(
        11, "smoke", workloads=names, optimize="local", jobs=2))
    assert pooled == serial


def test_sharded_campaign_rejects_unknown_selection():
    with pytest.raises(KeyError):
        sharded_campaign(1, "no-such-campaign", jobs=2)
    with pytest.raises(KeyError):
        sharded_campaign(1, "smoke", classes=["no-such-class"],
                         jobs=2)
    with pytest.raises(KeyError):
        sharded_campaign(1, "smoke", workloads=["no-such-workload"],
                         jobs=2)


def test_sharded_analyze_byte_identical():
    from repro.analysis import analyze_workload
    serial = json.dumps([analyze_workload(w) for w in SOME],
                        indent=2, sort_keys=True)
    pooled = json.dumps(sharded_analyze(SOME, jobs=2),
                        indent=2, sort_keys=True)
    assert pooled == serial


def test_sharded_lintval_byte_identical():
    from repro.faults.lintval import run_lint_validation
    ws = [get("olden_power"), get("ftpd")]
    cs = ["null-deref", "double-free"]
    serial = run_lint_validation(3, workloads=ws, classes=cs).dumps()
    pooled = sharded_lintval(3, workloads=ws, classes=cs,
                             jobs=2).dumps()
    assert pooled == serial


# -- the matrix driver -------------------------------------------------------


def test_run_sweep_writes_deterministic_artifacts(tmp_path):
    a = tmp_path / "a"
    b = tmp_path / "b"
    for out, jobs in ((a, 1), (b, 2)):
        summary = run_sweep(targets=("lint", "campaign"), jobs=jobs,
                            out_dir=str(out))
        assert summary.ok
        assert len(summary.artifacts) == 2
    for name in ("lint-flow.json", "faults-smoke-flow.json"):
        assert (a / name).read_bytes() == (b / name).read_bytes()


def test_run_sweep_rejects_unknown_target():
    with pytest.raises(KeyError):
        run_sweep(targets=("no-such",), jobs=1)


# -- CLI ---------------------------------------------------------------------


def test_cli_metrics_jobs_byte_identical(tmp_path, capsys):
    serial = tmp_path / "serial.json"
    pooled = tmp_path / "pooled.json"
    sel = "olden_power,ptrdist_anagram"
    assert main(["metrics", "--workload", sel, "--quiet",
                 "--json", str(serial)]) == 0
    assert main(["metrics", "--workload", sel, "--quiet",
                 "--jobs", "2", "--json", str(pooled)]) == 0
    capsys.readouterr()
    assert pooled.read_bytes() == serial.read_bytes()


def test_cli_rejects_invalid_jobs(capsys):
    with pytest.raises(SystemExit) as exc:
        main(["metrics", "--workload", "olden_power",
              "--jobs", "nope"])
    assert exc.value.code == 2
    assert "invalid --jobs" in capsys.readouterr().err


def test_cli_sweep_and_cache_stats(tmp_path, capsys):
    out = tmp_path / "artifacts"
    assert main(["sweep", "--targets", "lint", "--jobs", "2",
                 "--quiet", "--out", str(out)]) == 0
    text = capsys.readouterr().out
    assert "lint-flow" in text
    assert (out / "lint-flow.json").exists()
    assert main(["cache", "stats"]) == 0
    assert "cure cache at" in capsys.readouterr().out
    assert main(["cache", "stats", "--json", "-"]) == 0
    stats = json.loads(capsys.readouterr().out)
    assert stats["enabled"] in (True, False)
    assert stats["entries"] >= 0


# -- PR 10: cross-process span capture ---------------------------------------


def test_run_sharded_span_sink_merges_worker_spans():
    from repro.sweep import run_sharded
    tasks = [("lint", {"name": w.name, "optimize": "flow",
                       "scale": None}) for w in SOME]
    sink: list = []
    import os
    plain = run_sharded(tasks, 2)
    traced = run_sharded(tasks, 2, span_sink=sink)
    # tracing never changes results
    assert [r.to_json() for r in traced] \
        == [r.to_json() for r in plain]
    pids = {r.pid for r in sink}
    assert len(pids) >= 2 and os.getpid() not in pids
    # one shard span per task, tagged with its workload (pipeline
    # spans inside vary with cache warmth; the boundary never does)
    shard_tags = {r.attrs.get("workload") for r in sink
                  if r.name == "shard"}
    assert shard_tags == {w.name for w in SOME}


def test_run_sharded_span_sink_serial_path():
    from repro.sweep import run_sharded
    import os
    sink: list = []
    run_sharded([("analyze", {"name": SOME[0].name,
                              "scale": None})], 1, span_sink=sink)
    assert sink and {r.pid for r in sink} == {os.getpid()}
    assert "shard" in {r.name for r in sink}


def test_run_sharded_under_spawn_context(monkeypatch):
    """Worker span capture under the spawn start method: fresh
    interpreters must import repro (the PYTHONPATH fallback), capture
    spans, and merge byte-identically to the serial path."""
    from repro.sweep import run_sharded
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    tasks = [("lint", {"name": w.name, "optimize": "flow",
                       "scale": None}) for w in SOME[:2]]
    sink: list = []
    pooled = run_sharded(tasks, 2, span_sink=sink)
    monkeypatch.delenv("REPRO_MP_START")
    serial = run_sharded(tasks, 1)
    assert [r.to_json() for r in pooled] \
        == [r.to_json() for r in serial]
    import os
    pids = {r.pid for r in sink}
    assert pids and os.getpid() not in pids


def test_mp_context_env_override(monkeypatch):
    from repro.sweep.runner import _mp_context
    monkeypatch.setenv("REPRO_MP_START", "spawn")
    assert _mp_context().get_start_method() == "spawn"
    monkeypatch.setenv("REPRO_MP_START", "no-such-method")
    assert _mp_context().get_start_method() in ("fork", "spawn")


def test_ensure_child_path_exports_repro_dir(monkeypatch):
    import os
    import repro
    from repro.sweep.runner import _ensure_child_path
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    monkeypatch.delenv("PYTHONPATH", raising=False)
    _ensure_child_path()
    assert os.environ["PYTHONPATH"].split(os.pathsep)[0] == src
    # idempotent: a second call does not duplicate the entry
    _ensure_child_path()
    assert os.environ["PYTHONPATH"].split(os.pathsep).count(src) == 1


def test_sharded_metrics_traced_output_byte_identical():
    """The satellite guarantee: enabling tracing changes nothing
    about the report bytes, sharded or serial."""
    from repro.bench.harness import clear_program_cache
    ws = SOME[:3]
    sink: list = []
    plain = sharded_metrics(ws, jobs=1)
    # cold in-process memos: the forked workers must really cure (the
    # disk cache answers, emitting cache spans), so the trace shows
    # the per-shard pipeline — while the report bytes cannot move
    clear_program_cache()
    traced = sharded_metrics(ws, jobs=2, trace=sink)
    assert stable_dumps(plain.to_json()) \
        == stable_dumps(traced.to_json())
    names = {r.name for r in sink}
    assert {"shard", "cure", "exec", "cache"} <= names
    events = {r.attrs.get("event") for r in sink
              if r.name == "cache"}
    assert events & {"hit", "miss"}


def test_run_sweep_trace_merges_dispatch_and_workers(tmp_path):
    trace: list = []
    summary = run_sweep(targets=("lint",), jobs=2, trace=trace)
    assert summary.ok
    names = {r.name for r in trace}
    assert "dispatch" in names and "shard" in names
    assert len({r.pid for r in trace}) >= 3  # parent + 2 workers


def test_cli_sweep_trace_chrome_file(tmp_path, capsys):
    trace = tmp_path / "sweep-trace.json"
    assert main(["sweep", "--targets", "lint", "--jobs", "2",
                 "--quiet", "--trace", str(trace)]) == 0
    capsys.readouterr()
    doc = json.loads(trace.read_text())
    assert doc["displayTimeUnit"] == "ms"
    xs = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    assert len({e["pid"] for e in xs}) >= 3
    assert {e["name"] for e in xs} >= {"dispatch", "shard"}
    lanes = [e for e in doc["traceEvents"]
             if e.get("ph") == "M" and e["name"] == "process_name"]
    assert sum("worker" in m["args"]["name"] for m in lanes) >= 2


# -- PR 10: the --progress line ----------------------------------------------


class _FakeTTY:
    def __init__(self):
        self.text = ""

    def write(self, s):
        self.text += s

    def flush(self):
        pass

    def isatty(self):
        return True


def test_progress_line_draws_only_on_tty():
    from repro.sweep import ProgressLine
    import io
    plain = io.StringIO()          # not a TTY -> silent
    pl = ProgressLine(4, stream=plain)
    pl.tick()
    pl.close()
    assert plain.getvalue() == ""
    tty = _FakeTTY()
    pl = ProgressLine(4, stream=tty)
    pl.tick("ignored message")
    pl.tick()
    pl.close()
    assert "[2/4 shards]" in tty.text
    assert "elapsed" in tty.text
    assert tty.text.endswith("\n")


def test_progress_line_clamps_overshoot():
    from repro.sweep import ProgressLine
    tty = _FakeTTY()
    pl = ProgressLine(2, stream=tty)
    for _ in range(5):
        pl.tick()
    pl.close()
    assert "[2/2 shards]" in tty.text
    assert "[5/2" not in tty.text


def test_cli_progress_never_contaminates_stdout(capsys):
    """--progress with non-TTY stderr (the capsys case) must leave
    stdout parseable JSON and stderr empty of progress bytes."""
    names = ",".join(w.name for w in SOME[:2])
    assert main(["metrics", "--workload", names, "--jobs", "2",
                 "--progress", "--json", "-"]) == 0
    out, err = capsys.readouterr()
    json.loads(out)                      # stdout is pure JSON
    assert "\r" not in out and "shards]" not in out
    assert "shards]" not in err          # non-TTY stderr: suppressed
    assert main(["sweep", "--targets", "lint", "--jobs", "2",
                 "--progress", "--json", "-", "--quiet"]) == 0
    out, err = capsys.readouterr()
    # --json - interleaves with the summary table; the JSON document
    # comes first and must be uncontaminated
    assert "\r" not in out and "shards]" not in out
    assert "shards]" not in err
