"""Edge-case tests for the interpreter: conversions, unions, varargs,
scoping, and the defensive machinery."""

import pytest

from helpers import cure_src, run_both

from repro.core import cure
from repro.frontend import parse_program
from repro.interp import Interpreter, run_cured, run_raw
from repro.runtime.checks import (InterpreterLimitError, LinkError,
                                  MemorySafetyError)


class TestConversions:
    def test_float_to_int_truncates(self):
        rc, _ = run_both("""
        int main(void) { double d = 3.99; return (int)d; }
        """)
        assert rc.status == 3

    def test_negative_float_to_int(self):
        rc, _ = run_both("""
        int main(void) { double d = -3.99; int i = (int)d;
          return i + 10; }
        """)
        assert rc.status == 7

    def test_int_to_float_exact(self):
        rc, _ = run_both("""
        int main(void) { int i = 7; double d = i; return (int)(d * 2.0); }
        """)
        assert rc.status == 14

    def test_unsigned_comparison(self):
        rc, _ = run_both("""
        int main(void) {
          unsigned int big = 0xFFFFFFF0u;
          unsigned int small = 4;
          return big > small;
        }
        """)
        assert rc.status == 1

    def test_long_long_arithmetic(self):
        rc, _ = run_both("""
        int main(void) {
          unsigned long long x = 1;
          int i;
          for (i = 0; i < 40; i++) x = x * 2;
          return (int)(x >> 32);   /* 2^40 >> 32 = 256 */
        }
        """)
        assert rc.status == 256

    def test_char_sign_extension_in_comparison(self):
        rc, _ = run_both("""
        int main(void) {
          char c = (char)0x80;   /* -128 */
          return c < 0;
        }
        """)
        assert rc.status == 1

    def test_pointer_to_int_roundtrip(self):
        rc, _ = run_both("""
        int main(void) {
          int x = 5;
          int *p = &x;
          unsigned int addr = (unsigned int)p;
          int *q = (int *)addr;
          return q == p;
        }
        """)
        assert rc.status == 1


class TestUnions:
    def test_union_member_overlay(self):
        rc, _ = run_both("""
        union u { unsigned int word; unsigned char bytes[4]; };
        int main(void) {
          union u v;
          v.word = 0x01020304u;
          return v.bytes[0];   /* little-endian: 0x04 */
        }
        """)
        assert rc.status == 4

    def test_union_assignment(self):
        rc, _ = run_both("""
        union u { int i; float f; };
        int main(void) {
          union u a;
          union u b;
          a.i = 42;
          b = a;
          return b.i;
        }
        """)
        assert rc.status == 42


class TestVarargsAndCalls:
    def test_printf_many_args(self):
        rc, _ = run_both(r'''
        #include <stdio.h>
        int main(void) {
          printf("%d %d %d %d %d %d\n", 1, 2, 3, 4, 5, 6);
          return 0;
        }
        ''')
        assert rc.stdout == "1 2 3 4 5 6\n"

    def test_missing_args_default_zero(self):
        # A call with fewer args than formals binds zeros (defensive).
        c = cure_src("""
        int f(int a, int b) { return a + b; }
        int main(void) { return f(5, 2); }
        """)
        assert run_cured(c).status == 7

    def test_mutual_recursion(self):
        rc, _ = run_both("""
        int is_odd(int n);
        int is_even(int n) { return n == 0 ? 1 : is_odd(n - 1); }
        int is_odd(int n) { return n == 0 ? 0 : is_even(n - 1); }
        int main(void) { return is_even(10) * 10 + is_odd(7); }
        """)
        assert rc.status == 11

    def test_function_pointer_through_struct(self):
        rc, _ = run_both("""
        struct ops { int (*apply)(int); };
        int inc(int x) { return x + 1; }
        int main(void) {
          struct ops o;
          o.apply = inc;
          return o.apply(41);
        }
        """)
        assert rc.status == 42

    def test_step_budget_enforced(self):
        c = cure_src("""
        int main(void) { while (1) { } return 0; }
        """)
        with pytest.raises(InterpreterLimitError):
            run_cured(c, max_steps=10_000)


class TestScopingAndGlobals:
    def test_global_function_pointer_table_initializer(self):
        rc, _ = run_both("""
        int a(void) { return 1; }
        int b(void) { return 2; }
        int (*table[2])(void) = { a, b };
        int main(void) { return table[0]() * 10 + table[1](); }
        """)
        assert rc.status == 12

    def test_global_pointer_to_global(self):
        rc, _ = run_both("""
        int value = 9;
        int *pvalue = &value;
        int main(void) { return *pvalue; }
        """)
        assert rc.status == 9

    def test_static_local_persists(self):
        rc, _ = run_both("""
        int counter(void) { static int n = 10; n++; return n; }
        int main(void) { counter(); counter(); return counter(); }
        """)
        assert rc.status == 13

    def test_shadowing_in_blocks(self):
        rc, _ = run_both("""
        int main(void) {
          int x = 1;
          { int x = 2; { int x = 3; if (x != 3) return 99; } }
          return x;
        }
        """)
        assert rc.status == 1

    def test_no_main_raises_link_error(self):
        prog = parse_program("int helper(void) { return 1; }", "nm")
        with pytest.raises(LinkError):
            run_raw(prog)


class TestDefensiveMachinery:
    def test_cured_null_deref_without_check_still_caught(self):
        """Even if instrumentation missed a site, the cured
        interpreter's defense-in-depth rejects a null dereference."""
        from repro.core import CureOptions
        c = cure("""
        int main(void) { int *p = 0; return *p; }
        """, options=CureOptions(checks=True), name="d")
        # strip the inserted checks to simulate a transformer gap
        from repro.cil import stmt as S
        from repro.cil.program import GFun

        def strip(block):
            for s in block.stmts:
                if isinstance(s, S.InstrStmt):
                    s.instrs = [i for i in s.instrs
                                if not isinstance(i, S.Check)]
                elif isinstance(s, S.Block):
                    strip(s)
                elif isinstance(s, S.If):
                    strip(s.then)
                    strip(s.els)
                elif isinstance(s, S.Loop):
                    strip(s.body)

        for g in c.prog.globals:
            if isinstance(g, GFun):
                strip(g.fundec.body)
        with pytest.raises(MemorySafetyError):
            run_cured(c)

    def test_interpreter_reuse_forbidden_state_isolated(self):
        """Two interpreter instances over the same cured program do
        not share memory state."""
        c = cure("""
        int counter = 0;
        int main(void) { counter++; return counter; }
        """, name="iso")
        assert run_cured(c).status == 1
        assert run_cured(c).status == 1  # fresh memory each run

    def test_stdout_limit(self):
        # The cap is a constructor knob, so a tiny limit exercises the
        # defense without interpreting 100k printf calls.
        c = cure_src(r'''
        #include <stdio.h>
        int main(void) {
          int i;
          for (i = 0; i < 2000; i++)
            printf("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx\n");
          return 0;
        }
        ''')
        with pytest.raises(InterpreterLimitError):
            run_cured(c, max_steps=5_000_000, stdout_limit=50_000)
        # the default cap is far above this program's output
        assert run_cured(c, max_steps=5_000_000).status == 0
