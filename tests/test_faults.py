"""Fault-injection engine tests: grafting, determinism, campaigns,
and the harness's failure containment."""

import copy

import pytest

from repro.bench.harness import (pristine_parse, run_suite)
from repro.core import CureOptions, cure
from repro.faults import (MUTATORS, make_variant, graft, run_campaign,
                          report_to_json)
from repro.faults.campaign import run_variant
from repro.interp import run_cured, run_raw
from repro.runtime.checks import BoundsError, InterpreterLimitError
from repro.workloads import Workload, get

SEED = 1337


# -- mutators ----------------------------------------------------------------

def test_make_variant_deterministic():
    a = make_variant("olden_power", "bounds-off-by-one", SEED)
    b = make_variant("olden_power", "bounds-off-by-one", SEED)
    c = make_variant("olden_power", "bounds-off-by-one", SEED + 1)
    d = make_variant("olden_em3d", "bounds-off-by-one", SEED)
    assert a.source == b.source and a.params == b.params
    assert (a.source, a.params) != (c.source, c.params) \
        or (a.source, a.params) != (d.source, d.params)


def test_unknown_class_rejected():
    with pytest.raises(KeyError):
        make_variant("olden_power", "no-such-class", SEED)


def test_graft_prepends_and_keeps_workload():
    w = get("olden_power")
    base = copy.deepcopy(pristine_parse(w, 2))
    n_before = len(base.functions["main"].body.stmts)
    spec = make_variant(w.name, "null-deref", SEED)
    graft(base, spec)
    main = base.functions["main"]
    assert len(main.body.stmts) > n_before
    # injected locals carry the __fi_ prefix and land in main
    assert any(v.name.startswith("__fi_") for v in main.locals)
    # no trailing return came along: the workload body is still live
    assert main.body.stmts[-1] is not None


def test_graft_remaps_shared_externs():
    # ftpd uses strlen; the fragment's own extern must fold onto it.
    w = get("ftpd")
    base = copy.deepcopy(pristine_parse(w, 2))
    spec = make_variant(w.name, "nul-removal", SEED)
    graft(base, spec)
    names = [v.name for v in base.externals.values()]
    assert names.count("strlen") <= 1


# -- variant execution -------------------------------------------------------

@pytest.mark.parametrize("mclass", list(MUTATORS),
                         ids=lambda m: m)
def test_variant_traps_on_small_workload(mclass):
    w = get("olden_power")
    spec = make_variant(w.name, mclass, SEED)
    vr = run_variant(w, spec, scale=2)
    assert vr.caught, vr.to_json()
    assert vr.engines_agree, vr.to_json()
    trapped = [r for r in vr.runs if r.tool.startswith("cured:")]
    assert all(r.failure is not None for r in trapped)
    assert all(r.error == spec.expected.__name__ for r in trapped)


def test_campaign_deterministic_json():
    kw = dict(workloads=["olden_power"],
              classes=["null-deref", "use-after-return"], scale=2)
    a = report_to_json(run_campaign(SEED, "smoke", **kw))
    b = report_to_json(run_campaign(SEED, "smoke", **kw))
    assert a == b


def test_campaign_summary_counts():
    r = run_campaign(SEED, "smoke", workloads=["olden_power"],
                     classes=["null-deref", "bad-downcast"], scale=2)
    assert r.injected == 2
    assert r.caught == 2
    assert r.agreed == 2
    assert r.ok
    js = r.to_json()
    assert js["summary"] == {"injected": 2, "caught": 2,
                             "engines_agree": 2, "ok": True}


@pytest.mark.parametrize("mclass", list(MUTATORS), ids=lambda m: m)
def test_flow_optimized_variant_still_traps(mclass):
    """Flow-sensitive elimination must never remove the check that
    catches an injected fault: same class, same record as the local
    level — except the site id, which is numbered over *surviving*
    checks and so shifts when more are elided."""
    w = get("olden_power")
    spec = make_variant(w.name, mclass, SEED)
    by_level = {lvl: run_variant(w, spec, scale=2, optimize=lvl)
                for lvl in ("local", "flow")}
    assert by_level["flow"].caught, by_level["flow"].to_json()
    assert by_level["flow"].engines_agree
    for rl, rf in zip(by_level["local"].runs, by_level["flow"].runs):
        if not rl.tool.startswith("cured:"):
            continue
        assert (rl.outcome, rl.error) == (rf.outcome, rf.error)
        fl = dict(rl.failure)
        ff = dict(rf.failure)
        fl.pop("site"), ff.pop("site")
        assert fl == ff, (mclass, rl.tool)


def test_campaign_json_records_optimize_level():
    r = run_campaign(SEED, "smoke", workloads=["olden_power"],
                     classes=["null-deref"], scale=2,
                     optimize="flow")
    assert r.ok
    assert r.to_json()["optimize"] == "flow"


def test_raw_runs_differ_from_cured():
    # The differential: at least the null-deref raw run must NOT trap
    # with a MemorySafetyError — it takes the hardware fault instead.
    w = get("olden_power")
    spec = make_variant(w.name, "null-deref", SEED)
    vr = run_variant(w, spec, scale=2)
    raw = [r for r in vr.runs if r.tool == "raw"][0]
    assert raw.outcome == "crash"
    assert raw.error == "SegmentationFault"


# -- unterminated strings (satellite 2) --------------------------------------

def test_read_cstring_unterminated_raises_bounds():
    from repro.frontend import parse_program
    from repro.interp import Interpreter
    from repro.runtime.values import PtrVal
    prog = parse_program("int main(void) { return 0; }", name="s")
    ip = Interpreter(prog, cured=None)
    home = ip.mem.alloc(64, "heap", "buf")
    ip.mem.write_raw(home.base, b"A" * 64)
    with pytest.raises(BoundsError) as ei:
        ip.read_cstring(PtrVal(home.base), limit=16)
    assert "NUL-terminated" in str(ei.value)
    assert ei.value.failure is not None
    assert ei.value.failure.check == "CHECK_VERIFY_NUL"


# -- wall-clock deadline -----------------------------------------------------

@pytest.mark.parametrize("engine", ("closures", "tree"))
def test_deadline_stops_infinite_loop(engine):
    src = ("int main(void) { volatile int x = 0;\n"
           "    while (1) { x = x + 1; }\n"
           "    return x; }")
    cured = cure(src, name="spin")
    with pytest.raises(InterpreterLimitError) as ei:
        run_cured(cured, engine=engine, deadline=0.05)
    assert "deadline" in str(ei.value)


def test_deadline_unset_keeps_step_message():
    src = ("int main(void) { volatile int x = 0;\n"
           "    while (1) { x = x + 1; }\n"
           "    return x; }")
    cured = cure(src, name="spin2")
    with pytest.raises(InterpreterLimitError) as ei:
        run_cured(cured, max_steps=10_000)
    assert str(ei.value) == "step budget exceeded"


# -- failure-contained suite runs (satellite 4 neighbourhood) ----------------

def _broken_workload(name, source):
    return Workload(name=name, category="test", description="",
                    paper_row="", filename=None,
                    generator=lambda: source)


def test_run_suite_contains_crash_and_hang():
    crash = _broken_workload(
        "crash", "int main(void) { int *p = (int *)0; return *p; }")
    hang = _broken_workload(
        "hang", "int main(void) { volatile int x = 0;\n"
                "    while (1) { x = x + 1; } return 0; }")
    good = get("olden_power")
    result = run_suite([crash, good, hang], scale=2,
                       max_steps=20_000)
    assert [r.name for r in result.rows] == ["olden_power"]
    assert sorted(f.name for f in result.failures) == ["crash",
                                                       "hang"]
    assert not result.ok
    by_name = {f.name: f for f in result.failures}
    assert by_name["crash"].error == "SegmentationFault"
    assert by_name["hang"].error == "InterpreterLimitError"
    assert by_name["crash"].phase == "run"


def test_run_suite_all_good_is_ok():
    result = run_suite([get("olden_power")], scale=2)
    assert result.ok and len(result.rows) == 1


def test_assert_same_behaviour_diff_message():
    from repro.bench.harness import ToolRun, _assert_same_behaviour
    raw = ToolRun("raw", cycles=100, status=0, steps=10,
                  stdout="a\nb\nc\n")
    cured = ToolRun("ccured", cycles=150, status=1, steps=12,
                    stdout="a\nX\nc\n")
    with pytest.raises(AssertionError) as ei:
        _assert_same_behaviour("demo", raw, cured)
    msg = str(ei.value)
    assert "cured behaviour diverged from raw" in msg
    assert "status 0 vs 1" in msg
    assert "-b" in msg and "+X" in msg   # unified diff hunks
    assert "cycles" in msg and "steps" in msg
