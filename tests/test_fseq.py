"""Tests for the FSEQ (forward-only sequence) pointer kind.

FSEQ is the CCured implementation's extra kind (not in the paper's
Figure 1): a pointer that only ever moves forward needs just ``p`` and
``e`` — two words instead of SEQ's three, and one bounds compare
instead of two.  It is enabled with ``CureOptions(use_fseq=True)``.
"""

import pytest

from helpers import kinds_of

from repro.core import CureOptions, cure
from repro.interp import run_cured, run_raw
from repro.frontend import parse_program
from repro.runtime.checks import BoundsError, MemorySafetyError

FORWARD_SCAN = """
#include <string.h>
int main(void) {
  char buf[16];
  char *p = buf;
  int n = 0;
  strcpy(buf, "forward only");
  while (*p != 0) { n++; p = p + 1; }
  return n;
}
"""

BACKWARD_SCAN = """
int main(void) {
  int a[8];
  int *p = a + 7;
  int i, s = 0;
  for (i = 0; i < 8; i++) { s += 1; p = p - 1; }
  return s;
}
"""


def fseq_cure(src, name="t"):
    return cure(src, options=CureOptions(use_fseq=True), name=name)


class TestInference:
    def test_forward_scan_is_fseq(self):
        c = fseq_cure(FORWARD_SCAN)
        assert kinds_of(c, "main")["p"] == "FSEQ"

    def test_backward_movement_is_seq(self):
        c = fseq_cure(BACKWARD_SCAN)
        assert kinds_of(c, "main")["p"] == "SEQ"

    def test_pointer_difference_is_seq(self):
        c = fseq_cure("""
        int main(void) {
          int a[4];
          int *p = a + 2;
          return (int)(p - a);
        }
        """)
        assert kinds_of(c, "main")["p"] == "SEQ"

    def test_negative_constant_offset_is_seq(self):
        c = fseq_cure("""
        int main(void) {
          int a[4];
          int *p = a + 2;
          p = p + (-1);
          return *p;
        }
        """)
        assert kinds_of(c, "main")["p"] == "SEQ"

    def test_disabled_by_default(self):
        c = cure(FORWARD_SCAN, name="nofseq")
        assert kinds_of(c, "main")["p"] == "SEQ"

    def test_negativity_propagates_backwards(self):
        # q moves backwards; p flows into q, so p must carry a base
        # bound too: both SEQ.
        c = fseq_cure("""
        int main(void) {
          int a[8];
          int *p = a + 4;
          int *q = p;
          q = q - 1;
          return *q;
        }
        """)
        ks = kinds_of(c, "main")
        assert ks["q"] == "SEQ"
        assert ks["p"] == "SEQ"


class TestExecution:
    def test_forward_scan_runs(self):
        c = fseq_cure(FORWARD_SCAN)
        rc = run_cured(c)
        rr = run_raw(parse_program(FORWARD_SCAN, "raw"))
        assert rc.status == rr.status == len("forward only")

    def test_fseq_overrun_caught(self):
        c = fseq_cure("""
        int main(void) {
          int a[4];
          int *p = a;
          int i, s = 0;
          for (i = 0; i <= 4; i++) { s += *p; p = p + 1; }
          return s;
        }
        """)
        with pytest.raises(BoundsError):
            run_cured(c)

    def test_fseq_null_caught(self):
        c = fseq_cure("""
        int main(void) {
          int *p = 0;
          p = p + 1;
          return *p;
        }
        """)
        with pytest.raises(MemorySafetyError):
            run_cured(c)

    def test_fseq_cheaper_than_seq(self):
        c_fseq = fseq_cure(FORWARD_SCAN, name="f")
        c_seq = cure(FORWARD_SCAN, name="s")
        r_fseq = run_cured(c_fseq)
        r_seq = run_cured(c_seq)
        assert r_fseq.status == r_seq.status
        assert r_fseq.cycles < r_seq.cycles

    def test_workloads_agree_with_fseq(self):
        from repro.workloads import get
        w = get("ptrdist_anagram")
        cured = w.cure(options=CureOptions(use_fseq=True), scale=1)
        rc = run_cured(cured)
        rr = run_raw(w.parse(scale=1))
        assert rc.status == rr.status
        assert rc.stdout == rr.stdout


class TestRepresentation:
    def test_rep_fseq_two_words(self):
        from repro.cil import types as T
        from repro.core.metadata import rep_type
        from repro.core.qualifiers import Node, PointerKind
        p = T.TPtr(T.int_t())
        n = Node(p, "t")
        n.kind = PointerKind.FSEQ
        n.solved = True
        p.node = n
        rep = rep_type(p)
        assert [f.name for f in T.unroll(rep).comp.fields] == \
            ["p", "e"]

    def test_meta_fseq_has_e_only(self):
        from repro.cil import types as T
        from repro.core.metadata import meta_type
        from repro.core.qualifiers import Node, PointerKind
        p = T.TPtr(T.char_t())
        n = Node(p, "t")
        n.kind = PointerKind.FSEQ
        n.solved = True
        p.node = n
        mt = meta_type(p)
        assert [f.name for f in T.unroll(mt).comp.fields] == ["e"]
