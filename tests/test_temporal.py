"""Temporal memory safety: lock-and-key checking end to end.

The tentpole scenario is the *reuse differential*: with the recycling
allocator (``Memory(reuse_freed=True)``) a raw run silently reads
whatever a later allocation wrote into a freed block's recycled
address, while a temporal cured run traps deterministically with
:class:`~repro.runtime.checks.UseAfterFreeError` — the lock-and-key
failure CCured's conservative-GC design sidesteps by never reusing
addresses.  Around it: lock-table unit behaviour, the ``free``/
``realloc`` C-semantics satellites, and the proof that the flow
optimizer's CHECK_ALIVE elision never changes behaviour.
"""

import pytest

from repro.core import CureOptions, cure
from repro.frontend import parse_program
from repro.interp import run_cured, run_raw
from repro.runtime import checks as C
from repro.runtime.memory import LockTable, Memory, PtrMeta

ENGINES = ("closures", "tree")

_ALLOC_DECLS = (
    "extern void *malloc(int n);\n"
    "extern void free(void *p);\n"
    "extern void *realloc(void *p, int n);\n")


def _cure(src, name, **copts):
    return cure(parse_program(_ALLOC_DECLS + src, name=name),
                options=CureOptions(**copts), name=name)


# ---------------------------------------------------------------------------
# LockTable units
# ---------------------------------------------------------------------------

class TestLockTable:
    def test_acquire_valid_release(self):
        lt = LockTable()
        slot, key = lt.acquire()
        assert lt.valid(slot, key)
        lt.release(slot)
        assert not lt.valid(slot, key)

    def test_keys_never_repeat_across_slot_reuse(self):
        lt = LockTable()
        slot1, key1 = lt.acquire()
        lt.release(slot1)
        slot2, key2 = lt.acquire()
        # the slot is recycled, its key is not: the stale key stays
        # invalid forever
        assert slot2 == slot1
        assert key2 != key1
        assert lt.valid(slot2, key2)
        assert not lt.valid(slot2, key1)

    def test_zero_key_never_valid(self):
        lt = LockTable()
        slot, _key = lt.acquire()
        assert not lt.valid(slot, 0)

    def test_double_release_is_idempotent(self):
        lt = LockTable()
        slot, key = lt.acquire()
        lt.release(slot)
        lt.release(slot)
        assert not lt.valid(slot, key)


# ---------------------------------------------------------------------------
# The recycling allocator
# ---------------------------------------------------------------------------

class TestReusingAllocator:
    def test_default_never_reuses(self):
        mem = Memory()
        a = mem.alloc(16, "heap", "a")
        mem.free(a)
        b = mem.alloc(16, "heap", "b")
        assert b.base != a.base

    def test_reuse_recycles_exact_size(self):
        mem = Memory(reuse_freed=True)
        a = mem.alloc(16, "heap", "a")
        mem.free(a)
        b = mem.alloc(16, "heap", "b")
        assert b.base == a.base
        assert b.alive and not b.freed

    def test_recycled_home_gets_fresh_lock(self):
        mem = Memory(reuse_freed=True)
        a = mem.alloc(16, "heap", "a")
        old = (a.lock_slot, a.lock_key)
        mem.free(a)
        b = mem.alloc(16, "heap", "b")
        assert not mem.locks.valid(*old)
        assert mem.locks.valid(b.lock_slot, b.lock_key)

    def test_recycled_home_keeps_stale_bytes(self):
        # deliberate: recycling does NOT zero — that staleness is
        # exactly what the raw side of the differential reads
        mem = Memory(reuse_freed=True)
        a = mem.alloc(8, "heap", "a")
        mem.write_int(a.base, 0xDEAD, 4)
        mem.free(a)
        b = mem.alloc(8, "heap", "b")
        assert mem.read_int(b.base, 4, signed=False) == 0xDEAD

    def test_different_size_not_recycled(self):
        mem = Memory(reuse_freed=True)
        a = mem.alloc(16, "heap", "a")
        mem.free(a)
        b = mem.alloc(8, "heap", "b")
        assert b.base != a.base

    def test_stack_homes_never_recycled(self):
        mem = Memory(reuse_freed=True)
        a = mem.alloc(16, "stack", "a")
        mem.free(a)
        b = mem.alloc(16, "stack", "b")
        assert b.base != a.base


# ---------------------------------------------------------------------------
# The reuse differential (the tentpole scenario)
# ---------------------------------------------------------------------------

_DIFFERENTIAL = """
extern int printf(char *fmt, ...);
int main(void) {
    int *p = (int *)malloc(8);
    p[0] = 1111;
    free(p);
    int *q = (int *)malloc(8);
    q[0] = 7777;
    printf("%d\\n", p[0]);
    return 0;
}
"""


class TestReuseDifferential:
    def test_raw_silently_reads_recycled_memory(self):
        prog = parse_program(_ALLOC_DECLS + _DIFFERENTIAL, name="d")
        res = run_raw(prog, reuse_freed=True)
        assert res.status == 0
        assert res.stdout.strip() == "7777"  # q's write, through p

    @pytest.mark.parametrize("engine", ENGINES)
    def test_temporal_traps_the_same_read(self, engine):
        cured = _cure(_DIFFERENTIAL, "d", temporal=True)
        with pytest.raises(C.UseAfterFreeError) as ei:
            run_cured(cured, engine=engine, reuse_freed=True)
        assert "key" in str(ei.value)  # the lock-and-key diagnosis

    @pytest.mark.parametrize("engine", ENGINES)
    def test_temporal_traps_without_reuse_too(self, engine):
        # no recycling yet: the home is still marked freed, the trap
        # fires on the home state rather than the key
        cured = _cure(_DIFFERENTIAL, "d", temporal=True)
        with pytest.raises(C.UseAfterFreeError):
            run_cured(cured, engine=engine)


# ---------------------------------------------------------------------------
# free() C semantics (satellite: even with temporal off)
# ---------------------------------------------------------------------------

class TestFreeSemantics:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_free_null_is_noop(self, engine):
        cured = _cure("""
        int main(void) {
            int *p = (int *)0;
            free(p);
            return 7;
        }""", "fn")
        assert run_cured(cured, engine=engine).status == 7

    @pytest.mark.parametrize("engine", ENGINES)
    def test_double_free_traps(self, engine):
        cured = _cure("""
        int main(void) {
            int *p = (int *)malloc(4);
            free(p);
            free(p);
            return 0;
        }""", "df")
        with pytest.raises(C.DoubleFreeError):
            run_cured(cured, engine=engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_interior_free_traps(self, engine):
        cured = _cure("""
        int main(void) {
            int *p = (int *)malloc(16);
            free(p + 1);
            return 0;
        }""", "if")
        with pytest.raises(C.InvalidFreeError):
            run_cured(cured, engine=engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_stack_free_traps(self, engine):
        cured = _cure("""
        int main(void) {
            int x = 3;
            free(&x);
            return 0;
        }""", "sf")
        with pytest.raises(C.InvalidFreeError):
            run_cured(cured, engine=engine)

    def test_raw_free_abuse_is_silent(self):
        # hardware semantics: glibc would likely abort, but the raw
        # model's job is to *survive* so the differential shows the
        # cured side catching what raw lets through
        prog = parse_program(_ALLOC_DECLS + """
        int main(void) {
            int *p = (int *)malloc(4);
            free(p);
            free(p);
            int x = 3;
            free(&x);
            return 5;
        }""", name="rf")
        assert run_raw(prog).status == 5

    @pytest.mark.parametrize("engine", ENGINES)
    def test_use_after_free_not_trapped_without_temporal(self, engine):
        # the conservative-GC default (the paper's design): freed
        # blocks stay readable, spatial checks pass
        cured = _cure("""
        int main(void) {
            int *p = (int *)malloc(4);
            *p = 9;
            free(p);
            return *p;
        }""", "gc")
        assert run_cured(cured, engine=engine).status == 9


# ---------------------------------------------------------------------------
# realloc migration (satellite)
# ---------------------------------------------------------------------------

class TestReallocMigration:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_realloc_migrates_pointer_meta(self, engine):
        # an inner pointer stored in the block must still carry fat
        # bounds after the block moves
        cured = _cure("""
        int g[4];
        int main(void) {
            int **pp = (int **)malloc(4);
            pp[0] = g;
            pp = (int **)realloc(pp, 8);
            int *q = pp[0];
            q[3] = 5;
            return q[3];
        }""", "rm")
        assert run_cured(cured, engine=engine).status == 5

    @pytest.mark.parametrize("engine", ENGINES)
    def test_realloc_then_use_of_old_pointer_traps(self, engine):
        cured = _cure("""
        int main(void) {
            int *p = (int *)malloc(4);
            *p = 1;
            int *r = (int *)realloc(p, 64);
            *r = 2;
            return *p;
        }""", "ro", temporal=True)
        with pytest.raises(C.UseAfterFreeError):
            run_cured(cured, engine=engine)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_realloc_under_reuse_keeps_contents(self, engine):
        cured = _cure("""
        int main(void) {
            int *p = (int *)malloc(8);
            p[0] = 40; p[1] = 2;
            p = (int *)realloc(p, 16);
            return p[0] + p[1];
        }""", "rr", temporal=True)
        res = run_cured(cured, engine=engine, reuse_freed=True)
        assert res.status == 42


# ---------------------------------------------------------------------------
# Check emission and elision
# ---------------------------------------------------------------------------

class TestCheckAliveElision:
    def test_non_temporal_cure_emits_no_alive_checks(self):
        from repro.cil import stmt as S
        cured = _cure("""
        int main(void) {
            int *p = (int *)malloc(4);
            *p = 1;
            return *p;
        }""", "na")
        assert S.CheckKind.ALIVE not in cured.check_counts

    def test_flow_elides_redundant_alive_checks(self):
        from repro.cil import stmt as S
        src = """
        int main(void) {
            int *p = (int *)malloc(16);
            p[0] = 1;
            p[1] = 2;
            p[2] = 3;
            return p[0] + p[1] + p[2];
        }"""
        full = _cure(src, "el0", temporal=True, optimize="none")
        flow = _cure(src, "el1", temporal=True, optimize="flow")

        def survivors(cured):
            from repro.obs.metrics import site_table
            return sum(1 for _, kind in site_table(cured.prog).values()
                       if kind == S.CheckKind.ALIVE.value)

        emitted = full.check_counts[S.CheckKind.ALIVE]
        assert emitted >= 6  # straight-line repeats on one pointer
        assert survivors(flow) < survivors(full)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_elision_levels_behave_identically(self, engine):
        # the temporal trap (and a clean run) must be level-invariant
        trap_src = """
        int main(void) {
            int *p = (int *)malloc(4);
            *p = 1;
            free(p);
            return *p;
        }"""
        records = []
        for level in ("none", "local", "flow"):
            cured = _cure(trap_src, f"lv-{level}", temporal=True,
                          optimize=level)
            with pytest.raises(C.UseAfterFreeError) as ei:
                run_cured(cured, engine=engine)
            f = C.CheckFailure.from_exception(ei.value).to_json()
            f.pop("site")  # site ids differ across levels by design
            records.append((str(ei.value), f))
        assert records[0] == records[1] == records[2]

    def test_temporal_off_baseline_unchanged(self):
        # a PtrVal never carries a key unless the cure is temporal:
        # the committed metrics baseline cannot drift
        from repro.runtime.values import PtrVal
        assert PtrVal(4, b=4, e=8).meta().key is None
        assert PtrVal(4).meta() is None


# ---------------------------------------------------------------------------
# Frame pop releases locks
# ---------------------------------------------------------------------------

class TestStackLocks:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_clean_calls_release_locks(self, engine):
        # lock slots are recycled across frames: deep call chains must
        # not grow the table without bound
        cured = _cure("""
        int f(int n) { int a[8]; a[0] = n; return a[0]; }
        int main(void) {
            int i; int s = 0;
            for (i = 0; i < 50; i++) s = f(i);
            return s;
        }""", "sl", temporal=True)
        from repro.interp import Interpreter
        ip = Interpreter(cured.prog, cured=cured, engine=engine)
        res = ip.run(None)
        assert res.status == 49
        # far fewer live slots than total acquisitions
        assert len(ip.mem.locks._free_slots) > 0
