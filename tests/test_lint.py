"""Tests for ``repro lint``: must-fail static diagnostics.

Covers the guard-refinement dataflow (early-return and short-circuit
idioms), each diagnostic class E001-E006 on targeted snippets, the
zero-false-positive sweep over every pristine workload, the
differential validation against the fault campaign's own variants,
suppression comments, byte-determinism of the JSON report, and the
CLI surface.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import (build_cfg, lint_source, lint_workload,
                            reports_json, reports_sarif, solve)
from repro.analysis.dataflow import ptr_var, transfer_instr
from repro.cil import stmt as S
from repro.cli import main
from repro.core import CureOptions, cure
from repro.core.options import OPTIMIZE_LEVELS
from repro.faults.lintval import (STATIC_CLASSES,
                                  run_lint_validation)
from repro.faults.mutators import graft, make_variant
from repro.workloads import all_workloads, get

ALL_NAMES = [w.name for w in all_workloads()]


def _facts_at_first_check(source, fname, kind):
    """In-facts of the base must-analysis right before the first
    check of ``kind`` in ``fname`` (plus the check itself)."""
    cured = cure(source, options=CureOptions(optimize="none"))
    fd = cured.prog.functions[fname]
    cfg = build_cfg(fd)
    dom, ins = solve(cfg)
    for b in cfg.rpo():
        facts = set(ins[b.bid])
        for i in b.instrs:
            if isinstance(i, S.Check) and i.kind is kind:
                return facts, i
            transfer_instr(dom, facts, i)
    raise AssertionError(f"no {kind} check in {fname}")


class TestGuardRefinement:
    """Satellite: branch_facts + join forwarding see through the
    common C guard idioms, including short-circuit lowering."""

    def test_early_return_guard_proves_nonnull(self):
        src = ("int f(int *p) {\n"
               "  if (p == 0) return 0;\n"
               "  return *p;\n"
               "}\n")
        facts, c = _facts_at_first_check(src, "f", S.CheckKind.NULL)
        v = ptr_var(c.args[0])
        assert ("nonnull", v.vid) in facts
        assert ("nez", v.vid) in facts

    def test_or_guard_proves_nonnull(self):
        # lowered through a __cil_sc temp diamond: needs empty-join
        # forwarding plus infeasible-edge pruning to refine
        src = ("int f(int *p, int g) {\n"
               "  if (p == 0 || g == 0) return 0;\n"
               "  return *p;\n"
               "}\n")
        facts, c = _facts_at_first_check(src, "f", S.CheckKind.NULL)
        v = ptr_var(c.args[0])
        assert ("nonnull", v.vid) in facts

    def test_and_guard_proves_nonnull_inside(self):
        src = ("int f(int *p, int g) {\n"
               "  if (p != 0 && g != 0) return *p;\n"
               "  return 0;\n"
               "}\n")
        facts, c = _facts_at_first_check(src, "f", S.CheckKind.NULL)
        v = ptr_var(c.args[0])
        assert ("nonnull", v.vid) in facts

    def test_null_arm_proves_eqz(self):
        src = ("int f(int *p) {\n"
               "  if (p == 0) return *p;\n"
               "  return 0;\n"
               "}\n")
        facts, c = _facts_at_first_check(src, "f", S.CheckKind.NULL)
        v = ptr_var(c.args[0])
        assert ("eqz", v.vid) in facts

    def test_guarded_deref_not_flagged(self):
        src = ("int f(int *p, int n) {\n"
               "  if (p == 0 || n == 0) return -1;\n"
               "  return *p;\n"
               "}\n")
        rep = lint_source(src, provenance=False)
        assert rep.diagnostics == []

    def test_loop_back_edges_survive_forwarding(self):
        # the empty-join forwarder must leave loop structure alone
        src = ("int f(int *p, int n) {\n"
               "  int s = 0; int i;\n"
               "  for (i = 0; i < n && p != 0; i++) s = s + *p;\n"
               "  return s;\n"
               "}\n")
        cured = cure(src, options=CureOptions(optimize="none"))
        cfg = build_cfg(cured.prog.functions["f"])
        assert cfg.n_back_edges >= 1
        rep = lint_source(src, provenance=False)
        assert rep.diagnostics == []


class TestDiagnosticClasses:
    def test_e001_null_deref(self):
        rep = lint_source("int main(void) {\n"
                          "  int *p = 0;\n"
                          "  *p = 1;\n"
                          "  return 0;\n"
                          "}\n", name="t", provenance=False)
        assert [d.code for d in rep.diagnostics] == ["repro-E001"]
        d = rep.diagnostics[0]
        assert (d.file, d.line) == ("t.c", 3)
        assert d.function == "main"
        assert any("assigned null" in s.note for s in d.path)

    def test_e002_constant_overrun(self):
        rep = lint_source("int main(void) {\n"
                          "  int a[4];\n"
                          "  int *q = a;\n"
                          "  q[4] = 1;\n"
                          "  return 0;\n"
                          "}\n", name="t", provenance=False)
        assert [d.code for d in rep.diagnostics] == ["repro-E002"]
        assert rep.diagnostics[0].line == 4

    def test_e002_in_range_not_flagged(self):
        rep = lint_source("int main(void) {\n"
                          "  int a[4];\n"
                          "  int *q = a;\n"
                          "  q[3] = 1;\n"
                          "  return 0;\n"
                          "}\n", provenance=False)
        assert rep.diagnostics == []

    def test_e003_double_free(self):
        rep = lint_source("extern void *malloc(int n);\n"
                          "extern void free(void *p);\n"
                          "int main(void) {\n"
                          "  int *h = (int *)malloc(8);\n"
                          "  free(h);\n"
                          "  free(h);\n"
                          "  return 0;\n"
                          "}\n", name="t", provenance=False)
        assert [d.code for d in rep.diagnostics] == ["repro-E003"]
        d = rep.diagnostics[0]
        assert d.line == 6 and d.check == "free" and d.site == -1

    def test_free_null_is_legal(self):
        rep = lint_source("extern void free(void *p);\n"
                          "int main(void) {\n"
                          "  int *p = 0;\n"
                          "  free(p);\n"
                          "  free(p);\n"
                          "  return 0;\n"
                          "}\n", provenance=False)
        assert rep.diagnostics == []

    def test_e004_use_after_free(self):
        rep = lint_source("extern void *malloc(int n);\n"
                          "extern void free(void *p);\n"
                          "int main(void) {\n"
                          "  int *h = (int *)malloc(8);\n"
                          "  h[0] = 1;\n"
                          "  free(h);\n"
                          "  return h[0];\n"
                          "}\n", name="t", provenance=False)
        assert [d.code for d in rep.diagnostics] == ["repro-E004"]
        assert rep.diagnostics[0].line == 7
        assert any("freed here" in s.note
                   for s in rep.diagnostics[0].path)

    def test_e005_uninitialized(self):
        rep = lint_source("int main(void) {\n"
                          "  int *u;\n"
                          "  return *u;\n"
                          "}\n", name="t", provenance=False)
        assert [d.code for d in rep.diagnostics] == ["repro-E005"]
        assert any("without an initializer" in s.note
                   for s in rep.diagnostics[0].path)

    def test_e005_killed_by_either_arm(self):
        rep = lint_source("int main(int argc, char **argv) {\n"
                          "  int x = 1; int y = 2; int *p;\n"
                          "  if (argc > 1) p = &x; else p = &y;\n"
                          "  return *p;\n"
                          "}\n", provenance=False)
        assert rep.diagnostics == []

    def test_e006_stack_free(self):
        rep = lint_source("extern void free(void *p);\n"
                          "int main(void) {\n"
                          "  int x = 3;\n"
                          "  free(&x);\n"
                          "  return 0;\n"
                          "}\n", name="t", provenance=False)
        assert [d.code for d in rep.diagnostics] == ["repro-E006"]
        assert "stack local" in rep.diagnostics[0].message

    def test_e006_interior_free(self):
        rep = lint_source("extern void *malloc(int n);\n"
                          "extern void free(void *p);\n"
                          "int main(void) {\n"
                          "  int *h = (int *)malloc(16);\n"
                          "  free(h + 2);\n"
                          "  return 0;\n"
                          "}\n", provenance=False)
        assert [d.code for d in rep.diagnostics] == ["repro-E006"]

    def test_infeasible_arm_not_diagnosed(self):
        # `p != 0` out of an eqz(p) state: the arm is unreachable
        rep = lint_source("int main(void) {\n"
                          "  int *p = 0;\n"
                          "  if (p != 0) { *p = 1; }\n"
                          "  return 0;\n"
                          "}\n", provenance=False)
        assert rep.diagnostics == []

    def test_code_after_return_not_diagnosed(self):
        rep = lint_source("int main(void) {\n"
                          "  int *p = 0;\n"
                          "  return 0;\n"
                          "  *p = 1;\n"
                          "}\n", provenance=False)
        assert rep.diagnostics == []


class TestBlame:
    def test_blame_attached_with_provenance(self):
        src = ("int main(void) {\n"
               "  int a[4];\n"
               "  int *q = a;\n"
               "  q[4] = 1;\n"
               "  return 0;\n"
               "}\n")
        rep = lint_source(src, provenance=True)
        (d,) = rep.diagnostics
        assert d.blame is not None
        assert d.blame["steps"], "blame chain has steps"
        rep2 = lint_source(src, provenance=False)
        assert rep2.diagnostics[0].blame is None


class TestSuppression:
    SRC = ("int main(void) {\n"
           "  int *p = 0;\n"
           "  /* repro-lint: ignore */\n"
           "  *p = 1;\n"
           "  return 0;\n"
           "}\n")

    def test_comment_above_suppresses(self):
        rep = lint_source(self.SRC, provenance=False)
        assert rep.diagnostics == [] and rep.suppressed == 1

    def test_trailing_comment_suppresses(self):
        rep = lint_source("int main(void) {\n"
                          "  int *p = 0;\n"
                          "  *p = 1; /* repro-lint: ignore */\n"
                          "  return 0;\n"
                          "}\n", provenance=False)
        assert rep.diagnostics == [] and rep.suppressed == 1

    def test_graft_merges_fragment_suppressions(self):
        from repro.faults.mutators import FaultSpec
        from repro.frontend import parse_program
        from repro.runtime import checks as C
        spec = FaultSpec(
            mclass="null-deref", expected=C.NullDereferenceError,
            source=("int main(void) {\n"
                    "  int *__fi_p = (int *)0;\n"
                    "  *__fi_p = 1; /* repro-lint: ignore */\n"
                    "  return 0;\n"
                    "}\n"),
            description="suppressed null deref")
        target = parse_program("int main(void) { return 0; }\n",
                               name="host")
        graft(target, spec, name="host+null-deref")
        assert ("host+null-deref.c", 3) in target.lint_suppressions
        from repro.analysis import lint_cured
        cured = cure(target, options=CureOptions(optimize="flow"),
                     name="host+null-deref")
        rep = lint_cured(cured)
        assert rep.diagnostics == [] and rep.suppressed == 1


class TestDeterminism:
    SRC = ("extern void *malloc(int n);\n"
           "extern void free(void *p);\n"
           "int main(void) {\n"
           "  int *p = 0;\n"
           "  int a[4];\n"
           "  int *q = a;\n"
           "  int *h = (int *)malloc(8);\n"
           "  *p = 1;\n"
           "  q[9] = 2;\n"
           "  free(h);\n"
           "  free(h);\n"
           "  return 0;\n"
           "}\n")

    def test_reports_json_byte_identical(self):
        a = reports_json([lint_source(self.SRC, name="d")])
        b = reports_json([lint_source(self.SRC, name="d")])
        assert a == b
        assert a.endswith("\n")

    def test_diagnostics_sorted_by_file_line_site(self):
        rep = lint_source(self.SRC, name="d", provenance=False)
        keys = [d.sort_key() for d in rep.diagnostics]
        assert keys == sorted(keys)
        assert [d.code for d in rep.diagnostics] == [
            "repro-E001", "repro-E002", "repro-E003"]

    def test_sarif_shape(self):
        import json
        doc = json.loads(reports_sarif(
            [lint_source(self.SRC, name="d", provenance=False)]))
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert {r["id"] for r in run["tool"]["driver"]["rules"]} == {
            f"repro-E00{i}" for i in range(1, 7)}
        assert {r["ruleId"] for r in run["results"]} == {
            "repro-E001", "repro-E002", "repro-E003"}


class TestPristineWorkloads:
    """The zero-false-positive contract: every benchmark workload is
    running code, so no must-fail site can be reachable."""

    @pytest.mark.parametrize("name", ALL_NAMES)
    def test_zero_findings_at_flow(self, name):
        rep = lint_workload(get(name), optimize="flow",
                            provenance=False)
        assert rep.diagnostics == [], [
            d.to_json() for d in rep.diagnostics]

    @settings(deadline=None, max_examples=25,
              suppress_health_check=[HealthCheck.too_slow])
    @given(name=st.sampled_from(ALL_NAMES),
           level=st.sampled_from(OPTIMIZE_LEVELS))
    def test_zero_findings_any_level(self, name, level):
        rep = lint_workload(get(name), optimize=level,
                            provenance=False)
        assert rep.diagnostics == []


class TestCampaignValidation:
    """Differential: the statically-decidable campaign classes are
    flagged at the grafted site with the expected code, and the
    surrounding workload stays clean."""

    def test_smoke_static_classes_all_flagged(self):
        ws = [get("olden_power"), get("ptrdist_anagram")]
        val = run_lint_validation(
            1, workloads=ws, classes=sorted(STATIC_CLASSES),
            optimize="flow")
        assert val.ok, val.render()
        assert val.recall == 1.0 and val.precision == 1.0
        assert val.static_variants == 2 * len(STATIC_CLASSES)

    @settings(deadline=None, max_examples=20,
              suppress_health_check=[HealthCheck.too_slow])
    @given(mclass=st.sampled_from(sorted(STATIC_CLASSES)),
           seed=st.integers(min_value=0, max_value=9999))
    def test_fragment_flips_exactly_expected_code(self, mclass, seed):
        spec = make_variant("prop", mclass, seed)
        rep = lint_source(spec.source, name="frag",
                          temporal=spec.temporal, provenance=False)
        codes = {d.code for d in rep.diagnostics}
        assert codes == {STATIC_CLASSES[mclass]}

    def test_validation_json_deterministic(self):
        ws = [get("olden_power")]
        a = run_lint_validation(7, workloads=ws,
                                classes=["null-deref"]).dumps()
        b = run_lint_validation(7, workloads=ws,
                                classes=["null-deref"]).dumps()
        assert a == b


class TestCli:
    BUG = ("int main(void) {\n"
           "  int *p = 0;\n"
           "  *p = 1;\n"
           "  return 0;\n"
           "}\n")

    @pytest.fixture
    def bug_c(self, tmp_path):
        path = tmp_path / "bug.c"
        path.write_text(self.BUG)
        return str(path)

    def test_text_finding_exits_1(self, bug_c, capsys):
        assert main(["lint", bug_c]) == 1
        out = capsys.readouterr().out
        assert "repro-E001" in out and "definitely null" in out

    def test_fail_on_never(self, bug_c):
        assert main(["lint", bug_c, "--fail-on", "never"]) == 0

    def test_json_output(self, bug_c, tmp_path, capsys):
        out = tmp_path / "lint.json"
        assert main(["lint", bug_c, "--format", "json",
                     "-o", str(out), "--fail-on", "never"]) == 0
        import json
        doc = json.loads(out.read_text())
        assert doc["schema"] == "repro.analysis.lint/1"
        assert doc["reports"][0]["counts"] == {"repro-E001": 1}

    def test_sarif_stdout(self, bug_c, capsys):
        assert main(["lint", bug_c, "--format", "sarif",
                     "--fail-on", "never"]) == 0
        assert '"2.1.0"' in capsys.readouterr().out

    def test_clean_workload_exits_0(self, capsys):
        assert main(["lint", "--workload", "olden_power",
                     "--quiet"]) == 0
        assert "no must-fail sites" in capsys.readouterr().out

    def test_unknown_workload_exits_2(self, capsys):
        assert main(["lint", "--workload", "nope"]) == 2

    def test_no_target_exits_2(self, capsys):
        assert main(["lint"]) == 2

    def test_faults_lint_subcommand(self, capsys):
        assert main(["faults", "lint", "--seed", "1",
                     "--workloads", "olden_power",
                     "--classes", "null-deref,double-free",
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "precision 100%" in out and "recall 100%" in out
