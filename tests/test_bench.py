"""Unit tests for the benchmark harness, tables, and cost model."""

import json

import pytest

from repro.bench import (BenchRow, ToolRun, aggregate_census,
                         band_check, census_table, count_lines,
                         figure8_table, figure9_table, overhead_table,
                         run_workload)
from repro.cil.stmt import CheckKind
from repro.runtime.cost import CostModel
from repro.workloads import get


def mk_row(name="w", ccured=150, purify=3000, valgrind=2000,
           raw=100):
    row = BenchRow(
        name=name, lines=100,
        kind_pct={"safe": 0.8, "seq": 0.2, "wild": 0.0, "rtti": 0.0},
        raw=ToolRun("raw", raw, 0, 10))
    row.ccured = ToolRun("ccured", ccured, 0, 10)
    row.purify = ToolRun("purify", purify, 0, 10)
    row.valgrind = ToolRun("valgrind", valgrind, 0, 10)
    row.census = {"identical": 0.5, "upcast": 0.6, "downcast": 0.3,
                  "bad": 0.1}
    row.pointer_casts = 10
    return row


class TestRows:
    def test_ratios(self):
        row = mk_row()
        assert row.ccured_ratio == 1.5
        assert row.purify_ratio == 30.0
        assert row.valgrind_ratio == 20.0

    def test_sf_sq_w_rt_format(self):
        assert mk_row().sf_sq_w_rt() == "80/20/0/0"

    def test_missing_tools_are_zero(self):
        row = BenchRow(name="x", lines=1,
                       kind_pct={"safe": 1.0, "seq": 0, "wild": 0,
                                 "rtti": 0},
                       raw=ToolRun("raw", 100, 0, 1))
        assert row.ccured_ratio == 0.0
        assert row.valgrind_ratio == 0.0


class TestTables:
    def test_figure8_layout(self):
        table = figure8_table([mk_row("apache_x")])
        lines = table.splitlines()
        assert lines[0].startswith("Module")
        assert "x" in lines[-1] and "1.50" in lines[-1]

    def test_figure9_layout(self):
        table = figure9_table([mk_row("daemon")])
        assert "daemon" in table and "20.0" in table

    def test_overhead_table(self):
        table = overhead_table([mk_row()], "T")
        assert table.startswith("T")
        assert "30.0x" in table

    def test_census_table(self):
        table = census_table([mk_row()])
        assert "50%" in table
        assert "total pointer casts: 10" in table

    def test_band_check(self):
        assert band_check(1.5, 1.0, 2.0, "r") is None
        assert band_check(5.0, 1.0, 2.0, "r") is not None

    def test_aggregate_census_weighting(self):
        small = mk_row("a")
        small.pointer_casts = 10
        big = mk_row("b")
        big.pointer_casts = 90
        big.census = {"identical": 1.0, "upcast": 0.0,
                      "downcast": 0.0, "bad": 0.0}
        agg = aggregate_census([small, big])
        # 10*0.5 + 90*1.0 = 95 identical of 100
        assert agg["identical"] == pytest.approx(0.95)

    def test_count_lines_skips_blanks(self):
        assert count_lines("int x;\n\n  \nint y;\n") == 2


class TestHarness:
    def test_options_key_distinguishes_optimize_levels(self):
        # A ``--optimize=none|local|flow`` sweep must never reuse a
        # program cured at another level…
        from repro.bench.harness import _options_key
        from repro.core import CureOptions
        keys = {lvl: _options_key(CureOptions(optimize=lvl))
                for lvl in ("none", "local", "flow")}
        assert len(set(keys.values())) == 3
        # …while equivalent spellings share one cache entry.
        assert _options_key(CureOptions()) == \
            _options_key(CureOptions(optimize="flow"))
        assert _options_key(CureOptions(optimize_checks=False)) == \
            _options_key(CureOptions(optimize="none"))
        assert _options_key(None) is None

    def test_result_key_includes_engine_and_level(self):
        # Memoized measurements must be keyed by engine AND optimize
        # level: a closures run at --optimize=flow and a tree run at
        # --optimize=none measure different programs on different
        # machines and may never share a cache entry.
        from repro.bench.harness import _result_key
        from repro.core import CureOptions
        w = get("olden_bisort")
        keys = {_result_key(w, 3, engine, 1000, "ccured",
                            CureOptions(optimize=lvl))
                for engine in ("closures", "tree")
                for lvl in ("none", "local", "flow")}
        assert len(keys) == 6
        # raw runs carry the default level but still split by engine
        assert _result_key(w, 3, "closures", 1000, "raw", None) != \
            _result_key(w, 3, "tree", 1000, "raw", None)

    def test_pristine_cure_not_stale_across_levels(self):
        from repro.bench import pristine_cure
        from repro.core import CureOptions
        w = get("olden_em3d")
        by_level = {lvl: pristine_cure(
            w, options=CureOptions(optimize=lvl), scale=2)
            for lvl in ("none", "local", "flow")}
        assert by_level["none"].checks_removed == 0
        assert by_level["flow"].checks_removed > \
            by_level["local"].checks_removed > 0
        assert len({id(c) for c in by_level.values()}) == 3

    def test_run_workload_shapes(self):
        row = run_workload(get("olden_bisort"),
                           tools=("ccured",), scale=3)
        assert row.raw.cycles > 0
        assert row.ccured is not None
        assert row.ccured.status == row.raw.status
        assert 0.99 <= sum(row.kind_pct.values()) <= 1.01

    def test_run_workload_no_tools(self):
        row = run_workload(get("olden_bisort"), tools=(), scale=3)
        assert row.ccured is None
        assert row.pointer_casts >= 0

    def test_behaviour_divergence_would_raise(self):
        # _assert_same_behaviour is exercised on every ccured run; a
        # synthetic divergence raises.
        from repro.bench.harness import _assert_same_behaviour
        from repro.interp import ExecResult
        a = ExecResult(0, "x", CostModel(), 1)
        b = ExecResult(1, "x", CostModel(), 1)
        with pytest.raises(AssertionError):
            _assert_same_behaviour("w", a, b)


class TestCostModel:
    def test_basic_charges(self):
        c = CostModel()
        c.charge_instr()
        c.charge_mem(4)
        c.charge_mem(8)
        assert c.instrs == 1 and c.mems == 2
        assert c.cycles == 1 + 1 + 2

    def test_check_charges_tracked(self):
        c = CostModel()
        c.charge_check(CheckKind.SEQ_BOUNDS)
        c.charge_check(CheckKind.SEQ_BOUNDS)
        assert c.events["check:CHECK_SEQ_BOUNDS"] == 2

    def test_wide_charges(self):
        c = CostModel()
        c.charge_wide("SEQ")
        assert c.cycles == 2
        c.charge_wide("SAFE")
        assert c.cycles == 2  # SAFE is one word: free

    def test_summary_mentions_top_events(self):
        c = CostModel()
        for _ in range(5):
            c.charge_instr()
        assert "instr=5" in c.summary()

    def test_all_events_merges(self):
        c = CostModel()
        c.charge_instr()
        c.charge_split(3)
        ev = c.all_events()
        assert ev["instr"] == 1 and ev["split"] == 3


class TestTrajectory:
    """PR 10: the benchmark-trajectory ledger and its gate."""

    def _fake_record(self, speedup=4.0, steps=1000):
        from repro.bench import bench_record
        cells = {"spec_compress:cured": {
            "tree": {"seconds": 1.0, "steps": steps, "cycles": 5000,
                     "status": 0, "steps_per_sec": steps},
            "closures": {"seconds": 0.25, "steps": steps,
                         "cycles": 5000, "status": 0,
                         "steps_per_sec": steps * 4},
            "speedup": speedup}}
        return bench_record(cells, suite=(("spec_compress", 3),),
                            quick=True, unix_ts=1.0)

    def test_record_schema_and_ledger_round_trip(self, tmp_path):
        from repro.bench import (BENCH_SCHEMA, append_history,
                                 read_history)
        path = str(tmp_path / "hist.jsonl")
        rec = self._fake_record()
        assert rec["schema"] == BENCH_SCHEMA
        append_history(rec, path)
        append_history(self._fake_record(speedup=4.5), path)
        records = read_history(path)
        assert len(records) == 2
        assert records[0] == rec
        # each line is one compact standalone JSON document
        lines = open(path).read().splitlines()
        assert all(json.loads(ln)["schema"] == BENCH_SCHEMA
                   for ln in lines)

    def test_load_record_takes_last_ledger_line(self, tmp_path):
        from repro.bench import append_history, load_record
        path = str(tmp_path / "hist.jsonl")
        append_history(self._fake_record(speedup=4.0), path)
        append_history(self._fake_record(speedup=9.9), path)
        assert load_record(path)["cells"][
            "spec_compress:cured"]["speedup"] == 9.9

    def test_diff_passes_identical_and_within_slack(self):
        from repro.bench import diff_bench
        base = self._fake_record(speedup=4.0)
        assert diff_bench(base, base) == []
        # 3.0x against a 4.0x baseline survives 50% slack (floor 2.0)
        assert diff_bench(base,
                          self._fake_record(speedup=3.0)) == []

    def test_diff_fails_on_throughput_regression(self):
        from repro.bench import diff_bench
        base = self._fake_record(speedup=4.0)
        fails = diff_bench(base, self._fake_record(speedup=1.5))
        assert fails and "speedup" in fails[0]

    def test_diff_fails_on_exact_counter_drift(self):
        from repro.bench import diff_bench
        base = self._fake_record()
        drifted = self._fake_record()
        drifted["cells"]["spec_compress:cured"]["closures"][
            "steps"] += 1
        fails = diff_bench(base, drifted)
        assert any("steps" in f and "drifted" in f for f in fails)

    def test_diff_fails_on_missing_cell(self):
        from repro.bench import diff_bench
        base = self._fake_record()
        shrunk = self._fake_record()
        shrunk["cells"] = {}
        assert any("missing" in f for f in diff_bench(base, shrunk))

    def test_render_record_and_diff(self):
        from repro.bench import diff_bench, render_diff, \
            render_record
        rec = self._fake_record()
        assert "spec_compress:cured" in render_record(rec)
        bad = self._fake_record(speedup=1.0)
        fails = diff_bench(rec, bad)
        text = render_diff(rec, bad, fails, slack_pct=50.0)
        assert "FAIL" in text
        ok = render_diff(rec, rec, [], slack_pct=50.0)
        assert "ok: within thresholds" in ok

    def test_cli_bench_suite_appends_history(self, tmp_path,
                                             capsys):
        from repro.cli import main
        hist = str(tmp_path / "h.jsonl")
        assert main(["bench", "--quick", "--history", hist,
                     "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "speedup" in out
        assert len(open(hist).read().splitlines()) == 1
        assert main(["bench", "--quick", "--history", hist,
                     "--quiet"]) == 0
        assert len(open(hist).read().splitlines()) == 2

    def test_cli_bench_diff_gates(self, tmp_path, capsys):
        from repro.cli import main
        base = tmp_path / "base.json"
        good = tmp_path / "good.json"
        bad = tmp_path / "bad.json"
        base.write_text(json.dumps(self._fake_record(speedup=4.0)))
        good.write_text(json.dumps(self._fake_record(speedup=3.5)))
        bad.write_text(json.dumps(self._fake_record(speedup=1.0)))
        assert main(["bench", "diff", "--baseline", str(base),
                     "--current", str(good)]) == 0
        assert main(["bench", "diff", "--baseline", str(base),
                     "--current", str(bad)]) == 2
        capsys.readouterr()
        assert main(["bench", "diff"]) == 2
        assert "--baseline is required" in capsys.readouterr().err

    def test_committed_baseline_matches_quick_suite_shape(self):
        from repro.bench import BENCH_SCHEMA, QUICK_SUITE
        with open("baselines/bench-baseline.json") as f:
            rec = json.load(f)
        assert rec["schema"] == BENCH_SCHEMA
        expect = {f"{name}:{mode}" for name, _ in QUICK_SUITE
                  for mode in ("cured", "raw")}
        assert set(rec["cells"]) == expect
        for cell in rec["cells"].values():
            assert cell["tree"]["steps"] == cell["closures"]["steps"]
            assert cell["tree"]["cycles"] \
                == cell["closures"]["cycles"]
