"""Unit tests for the benchmark harness, tables, and cost model."""

import pytest

from repro.bench import (BenchRow, ToolRun, aggregate_census,
                         band_check, census_table, count_lines,
                         figure8_table, figure9_table, overhead_table,
                         run_workload)
from repro.cil.stmt import CheckKind
from repro.runtime.cost import CostModel
from repro.workloads import get


def mk_row(name="w", ccured=150, purify=3000, valgrind=2000,
           raw=100):
    row = BenchRow(
        name=name, lines=100,
        kind_pct={"safe": 0.8, "seq": 0.2, "wild": 0.0, "rtti": 0.0},
        raw=ToolRun("raw", raw, 0, 10))
    row.ccured = ToolRun("ccured", ccured, 0, 10)
    row.purify = ToolRun("purify", purify, 0, 10)
    row.valgrind = ToolRun("valgrind", valgrind, 0, 10)
    row.census = {"identical": 0.5, "upcast": 0.6, "downcast": 0.3,
                  "bad": 0.1}
    row.pointer_casts = 10
    return row


class TestRows:
    def test_ratios(self):
        row = mk_row()
        assert row.ccured_ratio == 1.5
        assert row.purify_ratio == 30.0
        assert row.valgrind_ratio == 20.0

    def test_sf_sq_w_rt_format(self):
        assert mk_row().sf_sq_w_rt() == "80/20/0/0"

    def test_missing_tools_are_zero(self):
        row = BenchRow(name="x", lines=1,
                       kind_pct={"safe": 1.0, "seq": 0, "wild": 0,
                                 "rtti": 0},
                       raw=ToolRun("raw", 100, 0, 1))
        assert row.ccured_ratio == 0.0
        assert row.valgrind_ratio == 0.0


class TestTables:
    def test_figure8_layout(self):
        table = figure8_table([mk_row("apache_x")])
        lines = table.splitlines()
        assert lines[0].startswith("Module")
        assert "x" in lines[-1] and "1.50" in lines[-1]

    def test_figure9_layout(self):
        table = figure9_table([mk_row("daemon")])
        assert "daemon" in table and "20.0" in table

    def test_overhead_table(self):
        table = overhead_table([mk_row()], "T")
        assert table.startswith("T")
        assert "30.0x" in table

    def test_census_table(self):
        table = census_table([mk_row()])
        assert "50%" in table
        assert "total pointer casts: 10" in table

    def test_band_check(self):
        assert band_check(1.5, 1.0, 2.0, "r") is None
        assert band_check(5.0, 1.0, 2.0, "r") is not None

    def test_aggregate_census_weighting(self):
        small = mk_row("a")
        small.pointer_casts = 10
        big = mk_row("b")
        big.pointer_casts = 90
        big.census = {"identical": 1.0, "upcast": 0.0,
                      "downcast": 0.0, "bad": 0.0}
        agg = aggregate_census([small, big])
        # 10*0.5 + 90*1.0 = 95 identical of 100
        assert agg["identical"] == pytest.approx(0.95)

    def test_count_lines_skips_blanks(self):
        assert count_lines("int x;\n\n  \nint y;\n") == 2


class TestHarness:
    def test_options_key_distinguishes_optimize_levels(self):
        # A ``--optimize=none|local|flow`` sweep must never reuse a
        # program cured at another level…
        from repro.bench.harness import _options_key
        from repro.core import CureOptions
        keys = {lvl: _options_key(CureOptions(optimize=lvl))
                for lvl in ("none", "local", "flow")}
        assert len(set(keys.values())) == 3
        # …while equivalent spellings share one cache entry.
        assert _options_key(CureOptions()) == \
            _options_key(CureOptions(optimize="flow"))
        assert _options_key(CureOptions(optimize_checks=False)) == \
            _options_key(CureOptions(optimize="none"))
        assert _options_key(None) is None

    def test_result_key_includes_engine_and_level(self):
        # Memoized measurements must be keyed by engine AND optimize
        # level: a closures run at --optimize=flow and a tree run at
        # --optimize=none measure different programs on different
        # machines and may never share a cache entry.
        from repro.bench.harness import _result_key
        from repro.core import CureOptions
        w = get("olden_bisort")
        keys = {_result_key(w, 3, engine, 1000, "ccured",
                            CureOptions(optimize=lvl))
                for engine in ("closures", "tree")
                for lvl in ("none", "local", "flow")}
        assert len(keys) == 6
        # raw runs carry the default level but still split by engine
        assert _result_key(w, 3, "closures", 1000, "raw", None) != \
            _result_key(w, 3, "tree", 1000, "raw", None)

    def test_pristine_cure_not_stale_across_levels(self):
        from repro.bench import pristine_cure
        from repro.core import CureOptions
        w = get("olden_em3d")
        by_level = {lvl: pristine_cure(
            w, options=CureOptions(optimize=lvl), scale=2)
            for lvl in ("none", "local", "flow")}
        assert by_level["none"].checks_removed == 0
        assert by_level["flow"].checks_removed > \
            by_level["local"].checks_removed > 0
        assert len({id(c) for c in by_level.values()}) == 3

    def test_run_workload_shapes(self):
        row = run_workload(get("olden_bisort"),
                           tools=("ccured",), scale=3)
        assert row.raw.cycles > 0
        assert row.ccured is not None
        assert row.ccured.status == row.raw.status
        assert 0.99 <= sum(row.kind_pct.values()) <= 1.01

    def test_run_workload_no_tools(self):
        row = run_workload(get("olden_bisort"), tools=(), scale=3)
        assert row.ccured is None
        assert row.pointer_casts >= 0

    def test_behaviour_divergence_would_raise(self):
        # _assert_same_behaviour is exercised on every ccured run; a
        # synthetic divergence raises.
        from repro.bench.harness import _assert_same_behaviour
        from repro.interp import ExecResult
        a = ExecResult(0, "x", CostModel(), 1)
        b = ExecResult(1, "x", CostModel(), 1)
        with pytest.raises(AssertionError):
            _assert_same_behaviour("w", a, b)


class TestCostModel:
    def test_basic_charges(self):
        c = CostModel()
        c.charge_instr()
        c.charge_mem(4)
        c.charge_mem(8)
        assert c.instrs == 1 and c.mems == 2
        assert c.cycles == 1 + 1 + 2

    def test_check_charges_tracked(self):
        c = CostModel()
        c.charge_check(CheckKind.SEQ_BOUNDS)
        c.charge_check(CheckKind.SEQ_BOUNDS)
        assert c.events["check:CHECK_SEQ_BOUNDS"] == 2

    def test_wide_charges(self):
        c = CostModel()
        c.charge_wide("SEQ")
        assert c.cycles == 2
        c.charge_wide("SAFE")
        assert c.cycles == 2  # SAFE is one word: free

    def test_summary_mentions_top_events(self):
        c = CostModel()
        for _ in range(5):
            c.charge_instr()
        assert "instr=5" in c.summary()

    def test_all_events_merges(self):
        c = CostModel()
        c.charge_instr()
        c.charge_split(3)
        ev = c.all_events()
        assert ev["instr"] == 1 and ev["split"] == 3
