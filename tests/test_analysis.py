"""Tests for the flow-sensitive analysis package (``repro.analysis``).

Three layers:

* CFG construction units — block/edge shapes for straight-line code,
  branches, loops (including ``for``-increment ``continue`` targets)
  and unreachable code;
* dataflow + eliminator soundness edges — the satellite checklist:
  address-taken locals mutated through aliases, facts killed across
  ``Call``, loop-carried facts, and ``if``/``else`` joins where only
  one arm proves the fact;
* the whole-suite sweep — the flow pass must eliminate at least as
  many checks as the straight-line pass everywhere, strictly more on
  most workloads, with bit-identical observable behaviour at every
  level under both engines.
"""

import pytest
from helpers import cure_src

from repro.analysis import build_cfg
from repro.bench import pristine_cure
from repro.core import CureOptions, cure
from repro.frontend import parse_program
from repro.interp import Interpreter, run_cured
from repro.runtime.checks import NullDereferenceError
from repro.workloads import all_workloads

SCALE = 2

#: elimination levels a sweep compares
LEVELS = ("none", "local", "flow")


def _fundec(src: str, name: str = "main"):
    return parse_program(src, "cfgt").function(name)


def _null_checks(cured) -> int:
    return cured.to_c().count("__CHECK_NULL(")


# -- CFG construction --------------------------------------------------------

class TestCfg:
    def test_straight_line(self):
        cfg = build_cfg(_fundec("""
        int main(void) { int x = 1; int y = x + 1; return y; }
        """))
        order = cfg.rpo()
        assert order[0] is cfg.entry
        assert cfg.n_back_edges == 0
        # all instructions live on one path from entry to exit
        assert sum(len(b.instrs) for b in cfg.blocks) >= 2

    def test_if_edges_carry_condition_and_polarity(self):
        cfg = build_cfg(_fundec("""
        int main(void) {
          int x = 1;
          if (x) { x = 2; } else { x = 3; }
          return x;
        }
        """))
        branch = [e for b in cfg.blocks for e in b.succs
                  if e.cond is not None]
        assert len(branch) == 2
        assert {e.polarity for e in branch} == {True, False}
        assert branch[0].src is branch[1].src

    def test_loop_has_back_edge(self):
        cfg = build_cfg(_fundec("""
        int main(void) {
          int i = 0;
          int s = 0;
          while (i < 4) { s = s + i; i = i + 1; }
          return s;
        }
        """))
        assert cfg.n_back_edges >= 1

    def test_for_continue_reaches_increment(self):
        # ``continue`` must still execute the for-increment, i.e. the
        # loop's trailing statements: the continue edge lands on the
        # increment block (a non-back edge), and the increment block
        # carries the back edge.
        fd = _fundec("""
        int main(void) {
          int i;
          int s = 0;
          for (i = 0; i < 6; i = i + 1) {
            if (i == 2) continue;
            s = s + i;
          }
          return s;
        }
        """)
        cfg = build_cfg(fd)
        assert cfg.n_back_edges == 1
        back = [e for b in cfg.blocks for e in b.succs if e.back]
        # the back-edge source holds the increment (an instruction),
        # so continue jumped somewhere that still runs it
        assert back[0].src.instrs, \
            "back edge must come from the increment block"

    def test_unreachable_code_is_parked(self):
        cfg = build_cfg(_fundec("""
        int main(void) {
          int x = 1;
          return x;
          x = 2;
        }
        """))
        parked = [b for b in cfg.blocks
                  if b is not cfg.entry and not b.preds and b.instrs]
        assert parked, "code after return must be predecessor-less"


# -- soundness edges (satellite checklist) -----------------------------------

class TestSoundnessEdges:
    def test_branch_guard_alone_does_not_remove_null_check(self):
        # ``if (p)`` proves NonNull but not Alive: p could be a
        # dangling non-null pointer, so the check must stay.
        cured = cure_src("""
        int deref(int *p) {
          int a = 0;
          if (p) { a = *p; }
          return a;
        }
        int main(void) { int x = 3; return deref(&x); }
        """, optimize="flow")
        assert _null_checks(cured) >= 1

    def test_provenance_proves_checks_in_both_arms(self):
        cured = cure_src("""
        int main(void) {
          int x = 1;
          int c = 0;
          int *p = &x;
          int a;
          if (c) { a = *p; } else { a = *p + 1; }
          return a;
        }
        """, optimize="flow")
        assert _null_checks(cured) == 0

    def test_join_keeps_fact_proven_on_both_paths(self):
        # The check before the join is performed on every path, so
        # the one after the join is redundant — across statement
        # boundaries, which the local pass cannot see.
        src = """
        int f(int *p, int c) {
          int a = *p;
          if (c) { a = a + 1; }
          return a + *p;
        }
        int main(void) { int x = 2; return f(&x, 1); }
        """
        local = cure(src, options=CureOptions(optimize="local"),
                     name="l")
        flow = cure(src, options=CureOptions(optimize="flow"),
                    name="f")
        assert flow.checks_removed > local.checks_removed
        assert _null_checks(flow) < _null_checks(local)

    def test_one_arm_only_proof_does_not_survive_join(self):
        # Only the then-arm dereferences p; after the join the fact
        # is not a *must* fact, so the final check stays.
        cured = cure_src("""
        int f(int *p, int c) {
          int a = 0;
          if (c) { a = *p; } else { a = 1; }
          return a + *p;
        }
        int main(void) { int x = 2; return f(&x, 0); }
        """, optimize="flow")
        # both f's checks survive: the then-arm one (p is a bare
        # formal, no provenance) and the post-join one
        assert _null_checks(cured) >= 2

    def test_call_kills_facts(self):
        cured = cure_src("""
        int g;
        int touch(void) { g = 1; return 0; }
        int f(int *p) {
          int a = *p;
          touch();
          return a + *p;
        }
        int main(void) { int x = 2; return f(&x); }
        """, optimize="flow")
        src = cured.to_c()
        # both dereferences in f keep their checks
        f_body = src[src.index("int f("):src.index("int main(")]
        assert f_body.count("__CHECK_NULL(") == 2

    def test_address_taken_alias_mutation_traps(self):
        # p's facts must die at ``*pp = 0`` even though p itself is
        # never named on the left-hand side again.
        cured = cure_src("""
        int main(void) {
          int x = 1;
          int *p = &x;
          int **pp = &p;
          int a = *p;
          *pp = 0;
          int b = *p;
          return a + b;
        }
        """, optimize="flow")
        with pytest.raises(NullDereferenceError):
            run_cured(cured)

    def test_loop_variant_fact_not_hoisted(self):
        # p moves every iteration: its bounds check is not loop-
        # invariant and must fire on the overflowing access.
        from repro.runtime.checks import BoundsError
        cured = cure_src("""
        int main(void) {
          int arr[4];
          int *p = arr;
          int i;
          int s = 0;
          for (i = 0; i < 8; i = i + 1) {
            s = s + *p;
            p = p + 1;
          }
          return s;
        }
        """, optimize="flow")
        with pytest.raises(BoundsError):
            run_cured(cured)

    def test_loop_invariant_fact_eliminated(self):
        # q never changes inside the loop: the flow pass proves its
        # check once for the whole loop, the local pass cannot.
        src = """
        int main(void) {
          int arr[4];
          int *q = arr;
          int i;
          int s = 0;
          for (i = 0; i < 4; i = i + 1) {
            s = s + *q;
          }
          return s;
        }
        """
        local = cure(src, options=CureOptions(optimize="local"),
                     name="l")
        flow = cure(src, options=CureOptions(optimize="flow"),
                    name="f")
        assert flow.checks_removed > local.checks_removed
        r_local = run_cured(local)
        r_flow = run_cured(flow)
        assert (r_flow.status, r_flow.stdout) == \
            (r_local.status, r_local.stdout)
        assert r_flow.checks_executed < r_local.checks_executed

    def test_eliminated_checks_charge_nothing(self):
        src = """
        int main(void) {
          int x = 5;
          int *p = &x;
          return *p + *p;
        }
        """
        none = cure(src, options=CureOptions(optimize="none"),
                    name="n")
        flow = cure(src, options=CureOptions(optimize="flow"),
                    name="f")
        r_none = run_cured(none)
        r_flow = run_cured(flow)
        assert r_flow.checks_executed < r_none.checks_executed
        assert r_flow.cycles < r_none.cycles
        assert (r_flow.status, r_flow.stdout) == \
            (r_none.status, r_none.stdout)


# -- whole-suite sweep -------------------------------------------------------

def _counts(w):
    return {lvl: pristine_cure(
        w, options=CureOptions(optimize=lvl),
        scale=SCALE).checks_removed for lvl in LEVELS}


@pytest.mark.parametrize("w", all_workloads(), ids=lambda w: w.name)
def test_flow_dominates_local(w):
    c = _counts(w)
    assert c["none"] == 0
    assert c["flow"] >= c["local"], (
        f"{w.name}: flow removed {c['flow']} < local {c['local']}")


def test_flow_strictly_better_on_most_workloads():
    wins = sum(1 for w in all_workloads()
               if (c := _counts(w))["flow"] > c["local"])
    assert wins >= 20, f"flow > local on only {wins}/27 workloads"


@pytest.mark.parametrize("w", all_workloads(), ids=lambda w: w.name)
def test_levels_behaviour_identical(w):
    args = list(w.args) or None

    def sig(lvl, engine):
        cured = pristine_cure(w, options=CureOptions(optimize=lvl),
                              scale=SCALE)
        r = Interpreter(cured.prog, cured=cured, stdin=w.stdin,
                        engine=engine).run(args)
        return (r.status, r.stdout)

    ref = sig("none", "closures")
    assert sig("local", "closures") == ref
    assert sig("flow", "closures") == ref
    assert sig("flow", "tree") == ref
