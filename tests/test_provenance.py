"""Tests for inference provenance: blame graphs, explain, forensics.

The soundness property under test: with ``CureOptions.provenance`` on,
*every* non-SAFE pointer node has a complete blame chain — a walk over
recorded provenance that ends at a seed cause — and every spread step
names a constraint edge that actually exists in the constraint graph.
"""

import json

import pytest

from repro.cli import main
from repro.core import CureOptions, cure
from repro.frontend import parse_program
from repro.interp import run_cured
from repro.obs import (SEED_CAUSES, BlameGraph, diff_explain,
                       explain_report, stable_dumps)
from repro.obs.provenance import SPREAD_CAUSES, Provenance, describe
from repro.obs.tracer import Tracer, chrome_trace
from repro.runtime.checks import CheckFailure, MemorySafetyError
from repro.workloads import PROGRAM_DIR, all_workloads, get

from helpers import cure_src

#: a bad cast (char* -> struct) seeding WILD that spreads via compat
EVIL = r'''
struct blob { int a; int b; };
int main(void) {
  char buf[16];
  char *c = buf;
  struct blob *p = (struct blob *)c;
  struct blob *q = p;
  return q == p ? 0 : 1;
}
'''

#: in-bounds loop followed by one off-the-end write: SEQ bound trap
OOB = r'''
int main(void) {
  int a[4];
  int *p = a;
  int i;
  for (i = 0; i <= 4; i++) p[i] = i;
  return 0;
}
'''


def _cure_prov(src, name="t", **opts):
    opts.setdefault("provenance", True)
    return cure_src(src, name, **opts)


def _same_groups(nodes):
    """Union-find over ``same`` edges, recomputed independently of the
    solver, to validate ``via=group`` provenance steps."""
    parent = {i: i for i in nodes}

    def find(i):
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for n in nodes.values():
        for m in n.same:
            if m.id in parent:
                parent[find(n.id)] = find(m.id)
    return find


def _assert_edge_exists(graph, node, p):
    """A spread record's ``via`` edge must exist in the constraint
    graph between ``node`` and its ``src``."""
    src = graph.nodes.get(p.src)
    assert src is not None, (
        f"node {node.id}: src {p.src} not in blame graph")
    ids = lambda lst: {m.id for m in lst}  # noqa: E731
    if p.via in ("compat", "cast"):
        assert (src.id in ids(node.compat)
                or node.id in ids(src.compat)), (node.id, p)
    elif p.via == "same":
        assert (src.id in ids(node.same)
                or node.id in ids(src.same)), (node.id, p)
    elif p.via == "group":
        find = _same_groups(graph.nodes)
        assert find(node.id) == find(src.id), (node.id, p)
    elif p.via == "rtti_back":
        assert node.id in ids(src.rtti_back), (node.id, p)
    elif p.via == "seq_back":
        assert node.id in ids(src.seq_back), (node.id, p)
    elif p.via == "flow":
        assert node.id in ids(src.flow_out), (node.id, p)
    elif p.via == "base":
        pass  # src's referent contains node; existence checked above
    else:
        pytest.fail(f"unknown via edge {p.via!r} on node {node.id}")


def _check_chains(cured):
    """Every non-SAFE node has a complete chain ending at a seed, and
    every step's edge exists.  Returns the number of chains checked."""
    graph = BlameGraph.from_cured(cured)
    chains = graph.chains()
    for ch in chains:
        assert ch.complete, (
            f"incomplete chain for node {ch.node_id} "
            f"({ch.kind} at {ch.where}): {ch.steps}")
        assert ch.root.cause in SEED_CAUSES
        # walk the chain node by node so each step is checked against
        # the node that carries it, not just the chain head
        node = graph.nodes[ch.node_id]
        for step in ch.steps:
            if step.is_seed:
                break
            assert step.cause in SPREAD_CAUSES
            _assert_edge_exists(graph, node, step)
            node = graph.nodes[step.src]
    return len(chains)


class TestProvenanceRecord:
    def test_seed_json_omits_src_and_via(self):
        p = Provenance("WILD", "bad-cast", where="cast in f")
        assert p.is_seed
        assert p.to_json() == {"state": "WILD", "cause": "bad-cast",
                               "where": "cast in f"}

    def test_spread_json_keeps_src_and_via(self):
        p = Provenance("WILD", "wild-spread", via="compat", src=3,
                       where="local f:p")
        assert not p.is_seed
        js = p.to_json()
        assert js["via"] == "compat" and js["src"] == 3

    def test_describe_matches_legacy_reasons(self):
        assert describe(Provenance("WILD", "bad-cast")) == "bad cast"
        assert describe(Provenance("SEQ", "pointer-arith")) \
            == "pointer arithmetic"
        assert describe(Provenance("WILD", "wild-spread",
                                   via="base", src=1)) \
            == "inside WILD referent"

    def test_at_most_one_record_per_state(self):
        cured = _cure_prov(EVIL)
        graph = BlameGraph.from_cured(cured)
        for n in graph.nodes.values():
            states = [p.state for p in n.prov]
            assert len(states) == len(set(states)), n.prov


class TestBlameSoundness:
    def test_bad_cast_chain_ends_at_seed(self):
        cured = _cure_prov(EVIL)
        assert _check_chains(cured) > 0
        graph = BlameGraph.from_cured(cured)
        roots = {ch.root.cause for ch in graph.chains()
                 if ch.kind == "WILD"}
        assert roots == {"bad-cast"}

    def test_reason_derived_from_provenance(self):
        cured = _cure_prov(EVIL)
        graph = BlameGraph.from_cured(cured)
        wild = [n for n in graph.nodes.values()
                if n.solved and n.kind.name == "WILD"]
        assert wild
        for n in wild:
            assert n.reason in ("bad cast", "flows to/from WILD",
                                "representation tied to WILD",
                                "inside WILD referent")

    def test_reason_is_read_only(self):
        cured = _cure_prov(EVIL)
        graph = BlameGraph.from_cured(cured)
        n = next(iter(graph.nodes.values()))
        with pytest.raises(AttributeError):
            n.reason = "tampered"

    def test_provenance_off_records_nothing(self):
        cured = cure_src(EVIL, provenance=False)
        graph = BlameGraph.from_cured(cured)
        assert all(not n.prov for n in graph.nodes.values())
        assert all(ch.steps == [] for ch in graph.chains())

    @pytest.mark.parametrize("wname", ["ptrdist_anagram", "bind_like",
                                       "spec_ijpeg", "olden_bisort"])
    def test_workload_chains_complete(self, wname):
        w = get(wname)
        cured = w.cure(options=CureOptions(
            provenance=True, trust_bad_casts=w.trust_bad_casts))
        _check_chains(cured)

    def test_all_workloads_chains_complete_and_deterministic(self):
        for w in all_workloads():
            opts = CureOptions(provenance=True,
                               trust_bad_casts=w.trust_bad_casts)
            first = w.cure(options=opts)
            _check_chains(first)
            r1 = stable_dumps(explain_report(first, w.name))
            r2 = stable_dumps(explain_report(w.cure(options=opts),
                                             w.name))
            assert r1 == r2, f"{w.name}: blame graph not deterministic"


class TestNodeIdDeterminism:
    def test_ids_reset_per_analysis(self):
        c1 = _cure_prov(EVIL)
        c2 = _cure_prov(EVIL)
        ids1 = sorted(BlameGraph.from_cured(c1).nodes)
        ids2 = sorted(BlameGraph.from_cured(c2).nodes)
        assert ids1 == ids2
        assert min(ids1) == 0


class TestExplainDiff:
    def _report(self, src, name):
        return explain_report(_cure_prov(src, name), name)

    def test_trusted_cast_shrinks_wild(self):
        fixed = EVIL.replace("(struct blob *)c",
                             "(struct blob *)__trusted_cast(c)")
        before = self._report(EVIL, "before")
        after = self._report(fixed, "after")
        assert before["non_safe_nodes"].get("WILD", 0) > 0
        assert after["non_safe_nodes"].get("WILD", 0) == 0
        diff = diff_explain(before, after)
        assert diff["verdict"] == "improved"
        assert diff_explain(after, before)["verdict"] == "regressed"
        assert diff_explain(before, before)["verdict"] == "unchanged"

    def test_workload_annotation_loop(self):
        """The paper's porting loop on a real workload: graft an evil
        cast into anagram, watch WILD appear, fix it with
        __trusted_cast, watch WILD collapse back to zero."""
        base_src = get("ptrdist_anagram").source()
        evil = base_src + (
            "\nstruct evil_box { int a; int b; };\n"
            "struct evil_box *evil_view(char *p) {\n"
            "  return (struct evil_box *)p;\n"
            "}\n")
        fixed = evil.replace("(struct evil_box *)p",
                             "(struct evil_box *)__trusted_cast(p)")
        opts = CureOptions(provenance=True)

        def rep(src, name):
            prog = parse_program(src, name,
                                 include_dirs=[PROGRAM_DIR])
            cured = cure(prog, options=opts, name=name)
            _check_chains(cured)
            return explain_report(cured, name)

        before, after = rep(evil, "evil"), rep(fixed, "fixed")
        assert before["non_safe_nodes"].get("WILD", 0) > 0
        assert after["non_safe_nodes"].get("WILD", 0) == 0
        assert diff_explain(before, after)["verdict"] == "improved"


class TestFailureForensics:
    def _fail(self, engine):
        cured = _cure_prov(OOB)
        with pytest.raises(MemorySafetyError) as exc_info:
            run_cured(cured, engine=engine)
        return CheckFailure.from_exception(exc_info.value).to_json()

    def test_failure_carries_blame_chain(self):
        failure = self._fail("tree")
        assert failure["blame"], failure
        root = failure["blame"][-1]
        assert "src" not in root
        assert root["cause"] == "pointer-arith"

    def test_engines_report_identical_blame(self):
        tree = self._fail("tree")
        closures = self._fail("closures")
        assert tree == closures

    def test_no_blame_without_provenance(self):
        cured = cure_src(OOB, provenance=False)
        with pytest.raises(MemorySafetyError) as exc_info:
            run_cured(cured)
        failure = CheckFailure.from_exception(exc_info.value)
        assert failure.blame is None


class TestExplainCLI:
    def test_workload_exit_zero(self, capsys):
        assert main(["explain", "olden_power"]) == 0
        out = capsys.readouterr().out
        assert "pointer declaration" in out

    def test_unknown_workload_exit_two(self, capsys):
        assert main(["explain", "no_such_workload"]) == 2

    def test_file_target(self, tmp_path, capsys):
        path = tmp_path / "evil.c"
        path.write_text(EVIL)
        assert main(["explain", str(path)]) == 0
        out = capsys.readouterr().out
        assert "WILD root causes" in out
        assert "bad-cast" in out

    def test_json_output_is_stable(self, tmp_path, capsys):
        outs = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main(["explain", "ptrdist_anagram",
                         "--json", str(path)]) == 0
            outs.append(path.read_bytes())
        assert outs[0] == outs[1]
        payload = json.loads(outs[0])
        assert payload["schema"] == "repro.obs.blame/1"
        assert payload["root_causes"]

    def test_function_filter(self, capsys):
        assert main(["explain", "ptrdist_anagram",
                     "--function", "add_word"]) == 0
        out = capsys.readouterr().out
        assert "add_word" in out

    def test_diff_requires_both_sides(self, capsys):
        assert main(["explain", "diff"]) == 2

    def test_diff_exit_codes(self, tmp_path, capsys):
        def dump(src, name):
            rep = explain_report(_cure_prov(src, name), name)
            path = tmp_path / (name + ".json")
            path.write_text(stable_dumps(rep))
            return str(path)

        fixed = EVIL.replace("(struct blob *)c",
                             "(struct blob *)__trusted_cast(c)")
        evil_p, fixed_p = dump(EVIL, "evil"), dump(fixed, "fixed")
        assert main(["explain", "diff", "--baseline", evil_p,
                     "--current", fixed_p]) == 0
        out = capsys.readouterr().out
        assert "IMPROVED" in out
        assert main(["explain", "diff", "--baseline", fixed_p,
                     "--current", evil_p]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out

    def test_diff_rejects_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert main(["explain", "diff", "--baseline", str(bad),
                     "--current", str(bad)]) == 2


class TestMetricsIntegration:
    def test_root_causes_present_with_provenance(self):
        from repro.obs import collect_workload_metrics
        wm = collect_workload_metrics(get("ptrdist_anagram"),
                                      provenance=True)
        assert wm.root_causes is not None
        assert "SEQ" in wm.root_causes
        assert "root_causes" in wm.to_json()

    def test_root_causes_absent_without_provenance(self):
        from repro.obs import collect_workload_metrics
        wm = collect_workload_metrics(get("olden_power"))
        assert wm.root_causes is None
        assert "root_causes" not in wm.to_json()

    def test_diff_gates_root_cause_growth(self):
        from repro.obs import diff_reports
        from repro.obs.metrics import SCHEMA

        def report(rc):
            return {"schema": SCHEMA, "workloads": [{
                "name": "w", "checks_executed": 1, "cured_cycles": 1,
                "checks_surviving": 1, "checks_removed": 0,
                "sites": [], "root_causes": rc}]}

        base = report({"WILD": {"bad-cast: f": 2}})
        worse = report({"WILD": {"bad-cast: f": 5}})
        res = diff_reports(base, worse)
        regress = [f for f in res.regressions
                   if f.metric == "root-cause:WILD"]
        assert regress and regress[0].detail == "bad-cast: f"
        better = diff_reports(worse, base)
        assert better.ok
        assert any(f.severity == "improve"
                   and f.metric == "root-cause:WILD"
                   for f in better.findings)

    def test_diff_skips_root_causes_when_absent(self):
        from repro.obs import diff_reports
        from repro.obs.metrics import SCHEMA
        plain = {"schema": SCHEMA, "workloads": [{
            "name": "w", "checks_executed": 1, "cured_cycles": 1,
            "checks_surviving": 1, "checks_removed": 0, "sites": []}]}
        assert diff_reports(plain, plain).ok


class TestChromeTrace:
    def test_trace_event_structure(self):
        t = Tracer()
        with t.capture() as records:
            with t.span("cure", name="w"):
                with t.span("parse"):
                    pass
        doc = chrome_trace(records)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert metas and len(spans) == 2
        names = {e["name"] for e in spans}
        assert names == {"cure", "parse"}
        for e in spans:
            assert e["ts"] >= 0 and e["dur"] >= 0
            assert e["pid"] == metas[0]["pid"]

    def test_cli_metrics_trace_export(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["metrics", "--workload", "olden_power",
                     "--trace", str(trace), "--quiet"]) == 0
        doc = json.loads(trace.read_text())
        names = {e["name"] for e in doc["traceEvents"]
                 if e["ph"] == "X"}
        assert "workload" in names
