#!/usr/bin/env python3
"""Secure a network daemon, as in Section 5 of the paper.

The workload suite ships an ftpd-BSD-like daemon with the real
``replydirname`` off-by-one (the overflow the paper verified CCured
prevents).  This example runs the full story:

1. a benign FTP session — cured and uncured agree byte-for-byte;
2. the attack session against the *uncured* daemon — silent
   corruption or a crash;
3. the attack against the *cured* daemon — a clean BoundsError naming
   the vulnerable function.

Run:  python examples/secure_a_daemon.py
"""

from repro.interp import run_cured, run_raw
from repro.runtime.checks import MemorySafetyError, SegmentationFault
from repro.workloads import get


def main() -> None:
    ftpd = get("ftpd")

    print("=" * 64)
    print("1. Cure ftpd and serve a normal session")
    print("=" * 64)
    cured = ftpd.cure()
    print(cured.report())
    print()
    benign = run_cured(cured, stdin=ftpd.stdin)
    raw = run_raw(ftpd.parse(), stdin=ftpd.stdin)
    assert benign.stdout == raw.stdout and benign.status == raw.status
    print(benign.stdout)
    print(f"cured and uncured agree; CCured overhead: "
          f"{benign.cost.total / raw.cost.total:.2f}x "
          f"(paper measured 1.01x)")

    print()
    print("=" * 64)
    print("2. The replydirname attack against the UNCURED daemon")
    print("=" * 64)
    print("attack: MKD " + "a" * 20 + "...[62 bytes]\" (quote doubles"
          " past the buffer)")
    try:
        res = run_raw(ftpd.parse(), stdin=ftpd.attack_stdin)
        print(f"uncured daemon completed (exit {res.status}) — the"
              " overflow went undetected")
    except SegmentationFault as exc:
        print(f"uncured daemon crashed: {exc}")

    print()
    print("=" * 64)
    print("3. The same attack against the CURED daemon")
    print("=" * 64)
    try:
        run_cured(ftpd.cure(), stdin=ftpd.attack_stdin)
        print("UNEXPECTED: attack not caught")
    except MemorySafetyError as exc:
        print(f"caught -> {type(exc).__name__}: {exc}")
        print()
        print("The daemon cannot be exploited through this bug — at"
              " worst it stops.")


if __name__ == "__main__":
    main()
