#!/usr/bin/env python3
"""Library compatibility: wrappers and split metadata (Section 4).

Two mechanisms let cured code talk to uninstrumented libraries:

1. **Wrappers** (Section 4.1) — this example registers the paper's
   own Figure 3 wrapper for ``strchr`` and shows it validating inputs
   and rebuilding fat pointers.
2. **Compatible (split) metadata** (Section 4.2) — the example calls
   ``gethostbyname``, whose ``struct hostent`` result is produced by
   the "library" in plain C layout; the SPLIT inference lets the cured
   program traverse it in place, with bounds, and with no deep copy.

Run:  python examples/library_compat.py
"""

from repro import cure, run_cured

WRAPPER_DEMO = r'''
#include <ccured.h>
#include <string.h>
#include <stdio.h>

/* Figure 3 of the paper, verbatim in spirit */
#pragma ccuredWrapperOf("strchr_wrapper", "strchr")
char *strchr_wrapper(char *str, int chr) {
  __verify_nul(str);  /* check for NUL termination */
  /* call underlying function, stripping metadata */
  char *result = strchr((char *)__ptrof(str), chr);
  /* build a wide CCured ptr for the return value */
  return (char *)__mkptr((void *)result, (void *)str);
}

int main(void) {
  char path[32];
  strcpy(path, "/usr/local/bin");
  char *slash = path;
  int depth = 0;
  while ((slash = strchr(slash + 1, '/')) != (char *)0)
    depth++;
  printf("depth: %d\n", depth + 1);
  return 0;
}
'''

HOSTENT_DEMO = r'''
#include <stdio.h>
#include <string.h>

struct hostent {           /* exactly the paper's Section 4.2 struct */
  char *h_name;            /* String */
  char **h_aliases;        /* Array of strings */
  int h_addrtype;
};
extern struct hostent *gethostbyname(const char *name);

int main(void) {
  struct hostent *he = gethostbyname("repro.example.org");
  int i = 0;
  char *alias;
  if (he == (struct hostent *)0) return 1;
  printf("name: %s (af=%d)\n", he->h_name, he->h_addrtype);
  while ((alias = he->h_aliases[i]) != (char *)0) {
    printf("alias %d: %s\n", i, alias);
    i++;
  }
  /* interior pointer arithmetic on library-owned strings stays
   * bounds-checked thanks to the manufactured split metadata */
  {
    char *p = he->h_name;
    p = p + 6;
    printf("suffix: %s\n", p);
  }
  return 0;
}
'''


def main() -> None:
    print("=" * 64)
    print("1. The strchr wrapper of Figure 3")
    print("=" * 64)
    cured = cure(WRAPPER_DEMO, name="wrapper_demo")
    res = run_cured(cured)
    print(res.stdout.strip())
    print("calls to strchr were routed through strchr_wrapper;"
          " the result pointer")
    print("carries the bounds of `path`, so arithmetic on it stays"
          " checked.")

    print()
    print("=" * 64)
    print("2. gethostbyname and the compatible (SPLIT) metadata")
    print("=" * 64)
    cured2 = cure(HOSTENT_DEMO, name="hostent_demo")
    sr = cured2.split_result
    print(f"split inference: {sr.split_nodes} pointers split "
          f"({sr.split_fraction:.0%} of declarations), "
          f"{sr.meta_nodes} carry a metadata pointer")
    res2 = run_cured(cured2)
    print(res2.stdout.strip())
    print()
    print("The library wrote a plain-C hostent; the cured program")
    print("walked it in place — no deep copy and no hand-written")
    print("wrapper, which is exactly the Section 4.2 result.")


if __name__ == "__main__":
    main()
