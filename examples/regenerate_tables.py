#!/usr/bin/env python3
"""Regenerate every table of the paper's evaluation in one run.

This is the script behind EXPERIMENTS.md: Figure 8, Figure 9, the
Spec95/Olden/Ptrdist overhead comparison, the cast census, and the
three ablations (ijpeg RTTI, bind casts, split representation).

Run:  python examples/regenerate_tables.py          (~2-4 minutes)
"""

from repro.bench import (aggregate_census, census_table, figure8_table,
                         figure9_table, overhead_table, run_workload)
from repro.core import CureOptions
from repro.workloads import all_workloads, by_category, get

FIG9 = ["pcnet32", "sbull", "ftpd", "openssl_like", "openssh_like",
        "sendmail_like", "bind_like"]
SPEC = ["spec_compress", "spec_go", "spec_li", "olden_bisort",
        "olden_treeadd", "olden_power", "olden_em3d",
        "ptrdist_anagram", "ptrdist_ks"]


def banner(title: str) -> None:
    print()
    print("=" * 64)
    print(title)
    print("=" * 64)


def main() -> None:
    banner("Figure 8 — Apache module performance (paper: 0.94-1.04)")
    rows8 = [run_workload(w, tools=("ccured",), scale=1)
             for w in by_category("apache")]
    print(figure8_table(rows8))

    banner("Figure 9 — system software (paper: CCured 0.99-1.87, "
           "Valgrind 9.4-129)")
    rows9 = [run_workload(get(n), tools=("ccured", "valgrind"))
             for n in FIG9]
    print(figure9_table(rows9))

    banner("Spec95/Olden/Ptrdist (paper: CCured +7-56%, Purify "
           "25-100x, Valgrind 9-130x)")
    rows4 = [run_workload(get(n),
                          tools=("ccured", "purify", "valgrind"),
                          scale={"spec_compress": 3,
                                 "ptrdist_ks": 1}.get(n))
             for n in SPEC]
    print(overhead_table(rows4))

    banner("ijpeg RTTI experiment (paper: 60% WILD/2.15x -> "
           "1% RTTI/1.45x)")
    w = get("spec_ijpeg")
    r_rtti = run_workload(w, tools=("ccured",))
    r_wild = run_workload(w, tools=("ccured",),
                          options=CureOptions(use_rtti=False))
    print(f"WILD-only: ratio={r_wild.ccured_ratio:.2f} "
          f"kinds={r_wild.sf_sq_w_rt()}")
    print(f"with RTTI: ratio={r_rtti.ccured_ratio:.2f} "
          f"kinds={r_rtti.sf_sq_w_rt()}")

    banner("bind cast staircase (paper: 30% WILD -> 0% with "
           "RTTI + 380 trusted)")
    wb = get("bind_like")
    for label, opts in [
            ("original", CureOptions(use_physical=False,
                                     use_rtti=False)),
            ("physical", CureOptions(use_physical=True,
                                     use_rtti=False)),
            ("full+trust", CureOptions(trust_bad_casts=True))]:
        row = run_workload(wb, tools=(), options=opts)
        print(f"{label:<11} wild={row.kind_pct['wild']:.0%} "
              f"trusted={row.trusted_casts} "
              f"split={row.split_fraction:.1%}")

    banner("split-representation ablation (paper: em3d +58%, "
           "anagram +7%, rest <3%)")
    for n in ("olden_bisort", "olden_em3d", "ptrdist_anagram"):
        wl = get(n)
        plain = run_workload(wl, tools=("ccured",))
        split = run_workload(wl, tools=("ccured",),
                             options=CureOptions(all_split=True))
        extra = split.ccured.cycles / plain.ccured.cycles - 1.0
        print(f"{n:<17} plain {plain.ccured_ratio:.2f}x, "
              f"all-split {extra:+.1%}")

    banner("cast census (paper: 63% identical; of the rest 93% "
           "up / 6% down / <1% bad)")
    rows_c = [run_workload(w, tools=(), scale=1)
              for w in all_workloads()]
    print(census_table(rows_c))
    agg = aggregate_census(rows_c)
    print(f"\npooled: identical {agg['identical']:.1%}; of the rest "
          f"upcast {agg['upcast']:.1%}, downcast {agg['downcast']:.1%},"
          f" bad {agg['bad']:.1%}")


if __name__ == "__main__":
    main()
