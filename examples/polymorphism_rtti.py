#!/usr/bin/env python3
"""Subtype polymorphism in C, checked with RTTI pointers (Section 3).

This is the paper's own Figure/Circle example: C code written in an
object-oriented style with upcasts, dynamic dispatch and downcasts.
The example shows

* physical subtyping verifying the upcast statically,
* the inference marking exactly the downcast source as RTTI,
* a *wrong* downcast being caught at run time by ``isSubtype``.

Run:  python examples/polymorphism_rtti.py
"""

from repro import cure, run_cured
from repro.runtime.checks import RttiCastError

SHAPES = r'''
#include <stdio.h>
#include <stdlib.h>

/* the paper's running example, extended with a second subtype */
struct Figure { double (*area)(struct Figure *obj); int kind; };
struct Circle { double (*area)(struct Figure *obj); int kind;
                int radius; };
struct Square { double (*area)(struct Figure *obj); int kind;
                int side; double diag; };

double circle_area(struct Figure *obj) {
  struct Circle *cir = (struct Circle *)obj;   /* checked downcast */
  return 3.14159 * cir->radius * cir->radius;
}

double square_area(struct Figure *obj) {
  struct Square *sq = (struct Square *)obj;    /* checked downcast */
  return (double)(sq->side * sq->side);
}

int main(void) {
  struct Figure *figures[4];
  struct Circle *c1 = (struct Circle *)malloc(sizeof(struct Circle));
  struct Circle *c2 = (struct Circle *)malloc(sizeof(struct Circle));
  struct Square *s1 = (struct Square *)malloc(sizeof(struct Square));
  struct Square *s2 = (struct Square *)malloc(sizeof(struct Square));
  double total = 0.0;
  int i;

  c1->area = circle_area; c1->kind = 1; c1->radius = 2;
  c2->area = circle_area; c2->kind = 1; c2->radius = 5;
  s1->area = square_area; s1->kind = 2; s1->side = 3;
  s2->area = square_area; s2->kind = 2; s2->side = 7;

  figures[0] = (struct Figure *)c1;    /* upcasts: verified */
  figures[1] = (struct Figure *)s1;    /* statically by physical */
  figures[2] = (struct Figure *)c2;    /* subtyping */
  figures[3] = (struct Figure *)s2;

  for (i = 0; i < 4; i++)
    total += figures[i]->area(figures[i]);   /* dynamic dispatch */

  printf("total area: %d\n", (int)total);
  return 0;
}
'''

BAD_DOWNCAST = SHAPES.replace(
    "  printf(\"total area: %d\\n\", (int)total);",
    """  /* the bug: treat a Circle as a Square */
  {
    struct Square *oops = (struct Square *)figures[0];
    oops->diag = 1.4142;
  }
  printf("total area: %d\\n", (int)total);""")


def main() -> None:
    print("=" * 64)
    print("1. Cure the shapes program")
    print("=" * 64)
    cured = cure(SHAPES, name="shapes")
    print(cured.report())
    print()
    print("Inferred kinds in circle_area:")
    text = cured.to_c()
    start = text.index("double circle_area")
    print(text[start:text.index("}", start) + 1])

    print()
    print("=" * 64)
    print("2. Run it: dispatch + checked downcasts all pass")
    print("=" * 64)
    res = run_cured(cured)
    print(res.stdout.strip(),
          f"(expected {int(3.14159 * 4 + 9 + 3.14159 * 25 + 49)})")

    print()
    print("=" * 64)
    print("3. A wrong downcast (Circle treated as Square)")
    print("=" * 64)
    try:
        run_cured(cure(BAD_DOWNCAST, name="shapes_bad"))
        print("UNEXPECTED: not caught")
    except RttiCastError as exc:
        print(f"caught -> RttiCastError: {exc}")
        print()
        print("isSubtype(rttiOf(Circle), rttiOf(Square)) is false:")
        print("the write to oops->diag never happens.")


if __name__ == "__main__":
    main()
