#!/usr/bin/env python3
"""Compare CCured against Purify-like and Valgrind-like checkers.

Reproduces the comparison of Section 5 on a few workloads: CCured's
static analysis removes most checks, so its overhead is a fraction,
while the binary instrumentation tools pay factors — and still miss
the stack errors CCured catches.

Run:  python examples/compare_tools.py
"""

from repro.baselines import (BaselineViolation, PurifyChecker,
                             ValgrindChecker)
from repro.bench import overhead_table, run_workload
from repro.frontend import parse_program
from repro.interp import run_cured, run_raw
from repro.runtime.checks import MemorySafetyError
from repro.core import cure
from repro.workloads import get

STACK_BUG = """
int main(void) {
  int a[4];
  int b[4];
  int i = 5;
  a[i] = 99;      /* lands inside b */
  return 0;
}
"""


def main() -> None:
    print("=" * 64)
    print("1. Overhead comparison (deterministic cycle counts)")
    print("=" * 64)
    rows = []
    for name in ("olden_bisort", "ptrdist_anagram", "spec_go"):
        rows.append(run_workload(
            get(name), tools=("ccured", "purify", "valgrind")))
    print(overhead_table(rows, "workload overheads vs. uncured"))
    print()
    print("paper's bands: CCured +7..56%, Purify 25-100x, "
          "Valgrind 9-130x")

    print()
    print("=" * 64)
    print("2. Detection comparison: out-of-bounds stack indexing")
    print("=" * 64)
    for tool_cls in (PurifyChecker, ValgrindChecker):
        tool = tool_cls()
        try:
            run_raw(parse_program(STACK_BUG, "s"), shadow=tool)
            print(f"{tool.name:10s} MISSED the bug "
                  "(the write landed in the adjacent array)")
        except BaselineViolation as exc:
            print(f"{tool.name:10s} caught: {exc}")
    try:
        run_cured(cure(STACK_BUG, name="stack_bug"))
        print(f"{'ccured':10s} MISSED the bug")
    except MemorySafetyError as exc:
        print(f"{'ccured':10s} caught: {type(exc).__name__}: {exc}")
    print()
    print("\"these other tools do not catch out-of-bounds array"
          " indexing on")
    print(" stack-allocated arrays\" — Section 5 of the paper.")


if __name__ == "__main__":
    main()
