#!/usr/bin/env python3
"""Quickstart: cure a C program and watch CCured catch a buffer
overflow.

Run:  python examples/quickstart.py
"""

from repro import cure, parse_program, run_cured, run_raw
from repro.runtime.checks import MemorySafetyError

PROGRAM = r'''
#include <stdio.h>
#include <string.h>

int main(int argc, char **argv) {
  char name[12];
  int i;
  int total = 0;
  int squares[10];

  /* ordinary, safe computation */
  for (i = 0; i < 10; i++) squares[i] = i * i;
  for (i = 0; i < 10; i++) total += squares[i];
  printf("sum of squares: %d\n", total);

  /* the classic bug: no length check on the copy */
  strcpy(name, argv[1]);
  printf("hello, %s\n", name);
  return 0;
}
'''


def main() -> None:
    print("=" * 64)
    print("1. Cure the program (infer pointer kinds, insert checks)")
    print("=" * 64)
    cured = cure(PROGRAM, name="quickstart")
    print(cured.report())

    print()
    print("=" * 64)
    print("2. The instrumented output (kinds + __CHECK_* calls)")
    print("=" * 64)
    text = cured.to_c()
    print(text[text.index("int main"):])

    print("=" * 64)
    print("3. Run it on a friendly input")
    print("=" * 64)
    result = run_cured(cured, args=["Ada"])
    print(result.stdout, end="")
    print(f"-> exit {result.status}, {result.cost.total} cycles")

    print()
    print("=" * 64)
    print("4. Attack it: a 40-byte name into a 12-byte buffer")
    print("=" * 64)
    attack = ["A" * 40]
    raw = run_raw(parse_program(PROGRAM, "quickstart_raw"),
                  args=attack)
    print(f"uncured: ran to completion (exit {raw.status}) — the"
          " overflow silently corrupted the stack")
    try:
        run_cured(cure(PROGRAM, name="quickstart2"), args=attack)
        print("cured: UNEXPECTEDLY SURVIVED")
    except MemorySafetyError as exc:
        print(f"cured:   stopped cleanly -> {type(exc).__name__}: "
              f"{exc}")


if __name__ == "__main__":
    main()
